//! The resident engine runtime: a persistent worker pool with
//! cross-request cell packing.
//!
//! Every other execution path in this crate pays full engine construction
//! per call: [`crate::parallel::parallel_map`] spawns a fresh
//! [`std::thread::scope`] pool for each fan-out, re-warms the per-worker
//! scratch arenas from cold (scoped workers die with the call, and their
//! thread-local [`crate::arena`] slots die with them), and
//! [`crate::cells::run_cells`] can only pack lanes *within* one request.
//! That is fine for a one-shot CLI run and pure overhead for a resident
//! service: a sustained stream of small submissions pays thread spawn,
//! arena warm-up, and a ragged tail per request.
//!
//! [`Engine`] turns the batch scheduler into a long-lived runtime:
//!
//! - **Persistent workers.** `Engine::new(workers, gather)` spawns
//!   `workers` named OS threads once; between submissions they park on a
//!   condvar behind the shared submission queue. Their thread-local
//!   arena slots survive across submissions, so on a warm engine every
//!   job claims a recycled scratch (arena hit rate approaches 100% in
//!   steady state, vs. one cold start per call today).
//! - **Cross-request cell packing.** [`Engine::submit`] appends its jobs
//!   to one shared pending queue. Workers gather the queue into lockstep
//!   groups using the same compatibility rule as
//!   [`crate::cells::pack_cells`] — equal [`ShapeKey`] *plus equal
//!   checkpoint schedule*, because one `checkpoints` slice drives every
//!   lane of a [`run_policy_batch`] call — so lanes from *different
//!   concurrent submissions* ride the same SoA mega-batch.
//! - **Adaptive gather window.** A worker that finds pending lanes
//!   dispatches immediately when the queue is saturated (`pending >=
//!   batch × workers` — waiting longer cannot improve packing) or the
//!   engine is draining, and otherwise waits until the *oldest* pending
//!   lane has been queued for the gather window (`--engine-gather-us`,
//!   [`crate::parallel::configured_engine_gather_us`]), giving concurrent
//!   submitters a short chance to share a batch without adding latency to
//!   an already-full queue.
//! - **Graceful drain.** [`Engine::shutdown`] (and `Drop`) stops
//!   accepting submissions, dispatches everything still queued, waits for
//!   workers to finish, and joins them — no queued job is ever abandoned.
//!   [`Engine::drain`] initiates the same drain without consuming the
//!   engine, for callers that still hold in-flight handles.
//!
//! # Determinism
//!
//! Packing is a *scheduling* change only, exactly as in
//! [`crate::cells`]: every job keeps its own seed-derived RNG stream and
//! the lockstep engine runs the literal serial round body per lane, so a
//! job's result does not depend on which group (or which worker, chunk,
//! or lane width) executed it. Results scatter back to their
//! `(submission, job index)` slot, so [`Engine::submit`] returns results
//! in job order, bit-for-bit identical to [`crate::cells::run_cells`] on
//! the per-call pool — at any workers × chunk × batch × lanes
//! combination, and regardless of how concurrent submissions interleave.
//! The per-call and serial paths stay available as the identity oracle
//! (`--engine` is opt-in; see [`crate::parallel::configured_engine`]).
//!
//! # Error and panic semantics
//!
//! A failing job fails its whole lockstep group (as on the per-call
//! batched path); [`Engine::submit`] returns the first error in job
//! order. A panicking group marks every submission it served: the first
//! one (by queue position) re-raises the original payload, any other
//! submission sharing the group panics with a generic message. Workers
//! survive both — the engine stays usable.

use crate::batch::run_policy_batch;
use crate::cells::{CellJob, CellPackStats, ShapeKey};
use crate::runner::{run_policy, RunResult};
use cdt_core::Scenario;
use cdt_obs::LatencyHistogram;
use cdt_types::{CdtError, Result};
use std::any::Any;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One queued lane: a [`CellJob`] flattened into the engine's shared
/// pending queue, tagged with the submission it demuxes back to.
///
/// The scenario travels as a raw pointer because the queue outlives any
/// single `submit` borrow. Safety argument at the `unsafe impl Send`.
struct Lane {
    /// The submission this lane belongs to.
    submission: u64,
    /// Index into the submission's job slice (the demux slot).
    index: usize,
    /// Sweep-cell metadata (travels into span attrs, never the run).
    cell: u64,
    /// The scenario the lane runs against (borrowed from the submitter;
    /// valid until the lane's submission completes).
    scenario: *const Scenario,
    /// The lane's own RNG seed.
    seed: u64,
    /// Lockstep-compatibility key (shape + policy value).
    key: ShapeKey,
    /// Checkpoint schedule; part of the compatibility key because one
    /// `checkpoints` slice drives every lane of a batched group.
    checkpoints: Arc<Vec<usize>>,
}

// SAFETY: `scenario` is only dereferenced by workers while its submission
// is outstanding, and a submission stays outstanding until every one of
// its lanes has been executed (or consumed by a panicking group). Both
// `SubmitHandle::wait` and `SubmitHandle`'s `Drop` block until then, so
// the `&Scenario` borrows behind these pointers outlive every worker
// access. (`mem::forget` of a `SubmitHandle` would void this contract and
// is documented as forbidden on [`Engine::enqueue`].) `Scenario` itself
// is `Sync`, so shared references may cross threads.
unsafe impl Send for Lane {}

/// One packed lockstep group, ready to execute: all lanes share a
/// [`ShapeKey`] and checkpoint schedule.
struct Group {
    /// Whether to run through [`run_policy_batch`] (`batch > 1` at
    /// dispatch time) or per-job [`run_policy`] (the unbatched oracle
    /// path, always singleton groups).
    batched: bool,
    lanes: Vec<Lane>,
}

/// Book-keeping for one in-flight submission.
struct Submission {
    /// Lanes not yet executed; 0 means the submission is complete.
    remaining: usize,
    /// Per-job result slots, indexed by job order.
    slots: Vec<Option<Result<RunResult>>>,
    /// Groups that served at least one of this submission's lanes.
    groups: usize,
    /// Of those, groups whose lanes spanned more than one sweep cell.
    coalesced: usize,
    /// The payload of a worker panic, re-raised by the waiter.
    panic: Option<Box<dyn Any + Send>>,
    /// Set when a group serving this submission panicked (even if the
    /// payload went to another submission sharing the group).
    poisoned: bool,
}

/// State behind the engine's mutex.
struct State {
    /// Lanes waiting to be gathered into groups.
    pending: Vec<Lane>,
    /// Packed groups waiting for a worker.
    ready: VecDeque<Group>,
    /// In-flight submissions (removed by the waiter on completion).
    submissions: Vec<(u64, Submission)>,
    /// Next submission id.
    next_submission: u64,
    /// When the oldest lane in `pending` was enqueued (the gather-window
    /// anchor); `None` when `pending` is empty.
    oldest: Option<Instant>,
    /// Draining: no new submissions, dispatch everything queued.
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Wakes workers: new pending lanes, new ready groups, or shutdown.
    work_cv: Condvar,
    /// Wakes submitters: a submission may have completed.
    done_cv: Condvar,
    /// The gather window (how long a non-saturated queue waits for
    /// companions before dispatching).
    gather: Duration,
    /// Worker count (saturation threshold is `batch × workers`).
    workers: usize,
    submissions_total: AtomicU64,
    jobs_total: AtomicU64,
    cross_request_total: AtomicU64,
}

fn lock(shared: &Shared) -> MutexGuard<'_, State> {
    shared.state.lock().unwrap_or_else(PoisonError::into_inner)
}

fn elapsed_ns(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// A persistent worker runtime: submissions enqueue [`CellJob`]s onto a
/// shared queue, parked workers gather them into cross-request lockstep
/// groups, and results demux back to each submission in job order —
/// bit-for-bit identical to the per-call [`crate::cells::run_cells`]
/// path. See the module docs for the full contract.
pub struct Engine {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl Engine {
    /// Spawns a new engine with `workers` persistent worker threads
    /// (clamped to at least 1) and the given gather window.
    ///
    /// Most callers want the process-wide [`global`] engine; dedicated
    /// instances are for tests and benchmarks that need to pin the
    /// worker count or gather window independently of the knobs.
    #[must_use]
    pub fn new(workers: usize, gather: Duration) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                pending: Vec::new(),
                ready: VecDeque::new(),
                submissions: Vec::new(),
                next_submission: 0,
                oldest: None,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            gather,
            workers,

            submissions_total: AtomicU64::new(0),
            jobs_total: AtomicU64::new(0),
            cross_request_total: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("cdt-engine-{w}"))
                    .spawn(move || worker_loop(&shared, w))
                    .expect("spawning an engine worker thread must succeed")
            })
            .collect();
        Self { shared, handles }
    }

    /// Runs a job stream through the resident engine; results return in
    /// job order, bit-for-bit identical to [`crate::cells::run_cells`].
    /// Blocks until every job has executed.
    ///
    /// # Errors
    /// Propagates the first job error in job order, or rejects the
    /// submission when the engine is shut down.
    pub fn submit(&self, jobs: &[CellJob<'_>], checkpoints: &[usize]) -> Result<Vec<RunResult>> {
        self.submit_observed(jobs, checkpoints)
            .map(|(results, _)| results)
    }

    /// As [`Engine::submit`], additionally reporting the packing stats
    /// for this submission (groups its lanes landed in; a group shared
    /// with a concurrent submission counts for both).
    ///
    /// # Errors
    /// As [`Engine::submit`].
    pub fn submit_observed(
        &self,
        jobs: &[CellJob<'_>],
        checkpoints: &[usize],
    ) -> Result<(Vec<RunResult>, CellPackStats)> {
        if jobs.is_empty() {
            return Ok((
                Vec::new(),
                CellPackStats {
                    lanes: 0,
                    groups: 0,
                    coalesced_groups: 0,
                    mean_occupancy: 0.0,
                },
            ));
        }
        self.enqueue(jobs, checkpoints).wait()
    }

    /// Enqueues a submission and returns its [`SubmitHandle`] without
    /// blocking, so several submissions from one thread can be in flight
    /// together (each `wait` demuxes its own results).
    ///
    /// The handle's `Drop` blocks until the submission completes —
    /// workers hold pointers into `jobs` until then. Leaking the handle
    /// (`std::mem::forget`) voids that guarantee and is a contract
    /// violation: the borrow of `jobs` would end while workers may still
    /// read it.
    #[must_use]
    pub fn enqueue<'env>(
        &'env self,
        jobs: &'env [CellJob<'env>],
        checkpoints: &[usize],
    ) -> SubmitHandle<'env> {
        let span = cdt_obs::active_trace().map(|trace| {
            (
                trace,
                cdt_obs::span::current_scope(),
                cdt_obs::span::now_ns(),
            )
        });
        let checkpoints = Arc::new(checkpoints.to_vec());
        let mut st = lock(&self.shared);
        let id = st.next_submission;
        st.next_submission += 1;
        if st.shutdown {
            drop(st);
            return SubmitHandle {
                engine: self,
                id,
                jobs_len: jobs.len(),
                rejected: true,
                waited: false,
                span,
                _env: PhantomData,
            };
        }
        st.submissions.push((
            id,
            Submission {
                remaining: jobs.len(),
                slots: jobs.iter().map(|_| None).collect(),
                groups: 0,
                coalesced: 0,
                panic: None,
                poisoned: false,
            },
        ));
        for (index, job) in jobs.iter().enumerate() {
            st.pending.push(Lane {
                submission: id,
                index,
                cell: job.cell,
                scenario: std::ptr::from_ref::<Scenario>(job.scenario),
                seed: job.seed,
                key: ShapeKey::of(job),
                checkpoints: Arc::clone(&checkpoints),
            });
        }
        if st.oldest.is_none() {
            st.oldest = Some(Instant::now());
        }
        let depth = st.pending.len();
        drop(st);
        self.shared
            .submissions_total
            .fetch_add(1, Ordering::Relaxed);
        self.shared
            .jobs_total
            .fetch_add(jobs.len() as u64, Ordering::Relaxed);
        if cdt_obs::is_enabled() {
            let registry = cdt_obs::global();
            registry.add_counter("cdt_obs_engine_submissions_total", &[], 1);
            registry.add_counter("cdt_obs_engine_queued_jobs_total", &[], jobs.len() as u64);
            registry.set_gauge("cdt_obs_engine_queue_depth", &[], depth as f64);
        }
        self.shared.work_cv.notify_all();
        SubmitHandle {
            engine: self,
            id,
            jobs_len: jobs.len(),
            rejected: false,
            waited: false,
            span,
            _env: PhantomData,
        }
    }

    /// Lanes currently waiting in the shared queue (not yet gathered).
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        lock(&self.shared).pending.len()
    }

    /// Persistent worker threads this engine runs.
    #[must_use]
    pub fn worker_count(&self) -> usize {
        self.shared.workers
    }

    /// Submissions accepted over this engine's lifetime.
    #[must_use]
    pub fn submissions_total(&self) -> u64 {
        self.shared.submissions_total.load(Ordering::Relaxed)
    }

    /// Jobs enqueued over this engine's lifetime.
    #[must_use]
    pub fn jobs_total(&self) -> u64 {
        self.shared.jobs_total.load(Ordering::Relaxed)
    }

    /// Dispatched groups whose lanes spanned more than one submission —
    /// the cross-request packing win.
    #[must_use]
    pub fn cross_request_batches_total(&self) -> u64 {
        self.shared.cross_request_total.load(Ordering::Relaxed)
    }

    fn begin_shutdown(&self) {
        let mut st = lock(&self.shared);
        st.shutdown = true;
        drop(st);
        self.shared.work_cv.notify_all();
    }

    /// Begins draining without consuming the engine: new submissions are
    /// rejected and every lane already queued is dispatched immediately
    /// (the gather window no longer applies), but in-flight submissions
    /// still complete and the workers keep running until
    /// [`Engine::shutdown`] or `Drop` joins them. Lets a resident service
    /// initiate drain (e.g. from a signal handler) while submitters are
    /// still blocked on their results.
    pub fn drain(&self) {
        self.begin_shutdown();
    }

    /// Drains and stops the engine: no new submissions are accepted,
    /// every queued lane is still dispatched and its submission completed
    /// (drain leaves no job behind), then the workers exit and join.
    pub fn shutdown(mut self) {
        self.begin_shutdown();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.begin_shutdown();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// A ticket for one in-flight submission, returned by
/// [`Engine::enqueue`]. [`SubmitHandle::wait`] blocks for and returns the
/// submission's results; dropping the handle blocks until the submission
/// completes (discarding the results), so the borrowed jobs always
/// outlive the workers' use of them.
pub struct SubmitHandle<'env> {
    engine: &'env Engine,
    id: u64,
    jobs_len: usize,
    /// The engine was already shut down at enqueue time.
    rejected: bool,
    /// `wait` already consumed the submission (Drop must not re-wait).
    waited: bool,
    /// `engine_submit` span context captured at enqueue:
    /// (trace, parent scope, start ns).
    span: Option<(cdt_obs::TraceId, Option<cdt_obs::SpanId>, u64)>,
    _env: PhantomData<&'env [CellJob<'env>]>,
}

impl SubmitHandle<'_> {
    /// Blocks until every lane of this submission has executed, then
    /// returns the results in job order plus the submission's packing
    /// stats.
    ///
    /// # Errors
    /// The first job error in job order, or a rejection when the engine
    /// was already shut down at enqueue time.
    ///
    /// # Panics
    /// Re-raises a worker panic that occurred while executing this
    /// submission's lanes.
    pub fn wait(mut self) -> Result<(Vec<RunResult>, CellPackStats)> {
        self.waited = true;
        if self.rejected {
            return Err(CdtError::InvalidConfig {
                message: "engine is shut down; submission rejected".to_owned(),
            });
        }
        let sub = self.block_until_done();
        if let Some((trace, parent, start_ns)) = self.span {
            let record = cdt_obs::SpanRecord::new(
                trace,
                cdt_obs::span::next_span_id(),
                parent,
                "engine_submit",
                start_ns,
                cdt_obs::span::now_ns().saturating_sub(start_ns),
            )
            .with_batch(self.jobs_len as u64);
            cdt_obs::publish_spans(&[record]);
        }
        if let Some(payload) = sub.panic {
            std::panic::resume_unwind(payload);
        }
        assert!(
            !sub.poisoned,
            "a cdt engine worker panicked while executing a shared batch group"
        );
        let mut results = Vec::with_capacity(sub.slots.len());
        for slot in sub.slots {
            match slot {
                Some(Ok(result)) => results.push(result),
                Some(Err(e)) => return Err(e),
                None => unreachable!("completed submission with an unfilled slot"),
            }
        }
        let stats = CellPackStats {
            lanes: self.jobs_len,
            groups: sub.groups,
            coalesced_groups: sub.coalesced,
            mean_occupancy: if sub.groups == 0 {
                0.0
            } else {
                self.jobs_len as f64 / sub.groups as f64
            },
        };
        Ok((results, stats))
    }

    /// Waits for `remaining == 0` and removes the submission entry.
    fn block_until_done(&self) -> Submission {
        let mut st = lock(&self.engine.shared);
        loop {
            let pos = st
                .submissions
                .iter()
                .position(|(id, _)| *id == self.id)
                .expect("an unwaited submission stays registered");
            if st.submissions[pos].1.remaining == 0 {
                return st.submissions.swap_remove(pos).1;
            }
            st = self
                .engine
                .shared
                .done_cv
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

impl Drop for SubmitHandle<'_> {
    fn drop(&mut self) {
        if !self.waited && !self.rejected {
            // Block until the workers are done with the borrowed jobs;
            // results (and any panic payload) are discarded.
            let _ = self.block_until_done();
        }
    }
}

/// The persistent worker body: park on the queue, gather pending lanes
/// into groups when the window closes (or the queue saturates, or the
/// engine drains), execute groups, scatter results.
fn worker_loop(shared: &Shared, worker: usize) {
    let label = format!("e{worker}");
    loop {
        let mut idle_ns = 0u64;
        let Some(group) = next_group(shared, &mut idle_ns) else {
            publish_worker_stats(&label, 0, 0, idle_ns);
            break;
        };
        let started = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| execute_group(&group)));
        let busy_ns = elapsed_ns(started);
        let lanes = group.lanes.len();
        complete_group(shared, group, outcome);
        publish_worker_stats(&label, lanes as u64, busy_ns, idle_ns);
    }
}

/// Publishes one worker-loop iteration's deltas into the same pool
/// introspection families the per-call pool uses, labeled `e<worker>`, so
/// the `--obs-summary` worker table shows engine workers alongside pool
/// workers (park time lands in the `idle` column).
fn publish_worker_stats(label: &str, jobs: u64, busy_ns: u64, idle_ns: u64) {
    if !cdt_obs::is_enabled() || (jobs == 0 && busy_ns == 0 && idle_ns == 0) {
        return;
    }
    let registry = cdt_obs::global();
    let labels: [(&str, &str); 1] = [("worker", label)];
    registry.add_counter("cdt_obs_pool_worker_jobs_total", &labels, jobs);
    registry.add_counter(
        "cdt_obs_pool_worker_chunks_total",
        &labels,
        u64::from(jobs > 0),
    );
    registry.add_counter("cdt_obs_pool_worker_busy_ns_total", &labels, busy_ns);
    registry.add_counter("cdt_obs_pool_worker_idle_ns_total", &labels, idle_ns);
}

/// Claims the next ready group, gathering/dispatching the pending queue
/// as the window rules allow; returns `None` when the engine has drained
/// and shut down. Park time accumulates into `idle_ns`.
fn next_group(shared: &Shared, idle_ns: &mut u64) -> Option<Group> {
    let mut st = lock(shared);
    loop {
        if let Some(group) = st.ready.pop_front() {
            return Some(group);
        }
        if st.pending.is_empty() {
            if st.shutdown {
                return None;
            }
            let parked = Instant::now();
            st = shared
                .work_cv
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
            *idle_ns = idle_ns.saturating_add(elapsed_ns(parked));
            continue;
        }
        let batch = crate::parallel::configured_batch().max(1);
        // Dispatch now when waiting longer cannot improve packing
        // (saturated: a full batch for every worker), when draining, or
        // when the oldest lane's gather window has elapsed.
        let saturated = st.pending.len() >= batch.saturating_mul(shared.workers);
        let deadline = st.oldest.unwrap_or_else(Instant::now) + shared.gather;
        let now = Instant::now();
        if saturated || st.shutdown || now >= deadline {
            dispatch(shared, &mut st, batch);
            continue;
        }
        let parked = Instant::now();
        let (guard, _timeout) = shared
            .work_cv
            .wait_timeout(st, deadline - now)
            .unwrap_or_else(PoisonError::into_inner);
        st = guard;
        *idle_ns = idle_ns.saturating_add(elapsed_ns(parked));
    }
}

/// How many distinct sweep cells a group's lanes serve.
fn distinct_cells(group: &Group) -> usize {
    let mut seen: Vec<u64> = Vec::with_capacity(group.lanes.len());
    for lane in &group.lanes {
        if !seen.contains(&lane.cell) {
            seen.push(lane.cell);
        }
    }
    seen.len()
}

/// Packs the whole pending queue into lockstep groups (arrival-order
/// buckets keyed on `ShapeKey` + checkpoint schedule, mirroring
/// [`crate::cells::pack_cells`]) and moves them to the ready queue.
/// Called with the state lock held.
fn dispatch(shared: &Shared, st: &mut State, batch: usize) {
    let span = cdt_obs::active_trace().map(|trace| (trace, cdt_obs::span::now_ns()));
    let lanes = std::mem::take(&mut st.pending);
    st.oldest = None;
    let total_lanes = lanes.len();

    // Deterministic linear-scan bucketing, same as pack_cells (no hashing
    // over f64 policy params); checkpoints join the key because one
    // schedule slice drives all lanes of a batched group.
    let mut buckets: Vec<(ShapeKey, Arc<Vec<usize>>, Vec<Lane>)> = Vec::new();
    for lane in lanes {
        match buckets
            .iter_mut()
            .find(|(key, checkpoints, _)| *key == lane.key && **checkpoints == *lane.checkpoints)
        {
            Some((_, _, members)) => members.push(lane),
            None => {
                let key = lane.key;
                let checkpoints = Arc::clone(&lane.checkpoints);
                buckets.push((key, checkpoints, vec![lane]));
            }
        }
    }
    let batched = batch > 1;
    let mut groups: Vec<Group> = Vec::new();
    for (_, _, mut members) in buckets {
        while !members.is_empty() {
            let take = members.len().min(batch);
            let rest = members.split_off(take);
            groups.push(Group {
                batched,
                lanes: members,
            });
            members = rest;
        }
    }

    // Per-submission packing stats + the cross-request counter.
    let mut cross = 0u64;
    let mut coalesced_total = 0u64;
    for group in &groups {
        let first = group.lanes[0].submission;
        if group.lanes.iter().any(|l| l.submission != first) {
            cross += 1;
        }
        let mixed = distinct_cells(group) > 1;
        if mixed {
            coalesced_total += 1;
        }
        let mut seen: Vec<u64> = Vec::new();
        for lane in &group.lanes {
            if seen.contains(&lane.submission) {
                continue;
            }
            seen.push(lane.submission);
            if let Some((_, sub)) = st
                .submissions
                .iter_mut()
                .find(|(id, _)| *id == lane.submission)
            {
                sub.groups += 1;
                if mixed {
                    sub.coalesced += 1;
                }
            }
        }
    }
    shared
        .cross_request_total
        .fetch_add(cross, Ordering::Relaxed);
    let group_count = groups.len();
    if cdt_obs::is_enabled() && group_count > 0 {
        let registry = cdt_obs::global();
        registry.add_counter("cdt_obs_engine_cross_request_batches_total", &[], cross);
        registry.set_gauge("cdt_obs_engine_queue_depth", &[], 0.0);
        // The same cell-packing families the per-call scheduler feeds, so
        // summaries describe packing uniformly across both paths.
        registry.add_counter("cdt_obs_cell_batches_total", &[], group_count as u64);
        registry.add_counter("cdt_obs_cell_lanes_total", &[], total_lanes as u64);
        registry.add_counter("cdt_obs_cell_coalesced_batches_total", &[], coalesced_total);
        let mut occupancy = LatencyHistogram::default();
        for group in &groups {
            occupancy.record_ns(group.lanes.len() as u64);
        }
        registry.merge_histogram("cdt_obs_cell_batch_lanes", &[], &occupancy);
    }
    st.ready.extend(groups);
    shared.work_cv.notify_all();
    if let Some((trace, start_ns)) = span {
        // The gathering worker has no caller scope: the span is its own
        // root, which keeps the flame telescope identity (the analyzer
        // reconciles Σ exclusive == inclusive per root).
        let record = cdt_obs::SpanRecord::new(
            trace,
            cdt_obs::span::next_span_id(),
            None,
            "engine_gather",
            start_ns,
            cdt_obs::span::now_ns().saturating_sub(start_ns),
        )
        .with_lane(total_lanes as u64)
        .with_batch(group_count as u64);
        cdt_obs::publish_spans(&[record]);
    }
}

/// Executes one group on the calling worker thread: the exact per-call
/// code paths ([`run_policy`] unbatched, [`run_policy_batch`] on a
/// recycled arena scratch otherwise), so results are bit-identical.
fn execute_group(group: &Group) -> Result<Vec<RunResult>> {
    let spec = group.lanes[0].key.spec;
    let checkpoints = &group.lanes[0].checkpoints;
    if !group.batched {
        let lane = &group.lanes[0];
        // SAFETY: the submission owning this lane is still outstanding
        // (its waiter blocks until `complete_group` runs), so the
        // borrowed scenario is alive. See the `Lane` safety comment.
        let scenario = unsafe { &*lane.scenario };
        return run_policy(scenario, spec, lane.seed, checkpoints).map(|result| vec![result]);
    }
    let scenarios: Vec<&Scenario> = group
        .lanes
        .iter()
        // SAFETY: as above — every lane's submission is outstanding.
        .map(|lane| unsafe { &*lane.scenario })
        .collect();
    let seeds: Vec<u64> = group.lanes.iter().map(|lane| lane.seed).collect();
    let cells: Vec<u64> = group.lanes.iter().map(|lane| lane.cell).collect();
    crate::arena::with_batch_scratch(|scratch| {
        scratch.set_lane_cells(&cells);
        run_policy_batch(&scenarios, spec, &seeds, checkpoints, scratch)
    })
}

/// Scatters a finished group's outcome back to its submissions and wakes
/// the waiters.
fn complete_group(
    shared: &Shared,
    group: Group,
    outcome: std::thread::Result<Result<Vec<RunResult>>>,
) {
    let find = |st: &mut State, submission: u64| {
        st.submissions
            .iter_mut()
            .find(|(id, _)| *id == submission)
            .map(|(_, sub)| sub)
    };
    let mut st = lock(shared);
    match outcome {
        Ok(Ok(results)) => {
            for (lane, result) in group.lanes.iter().zip(results) {
                if let Some(sub) = find(&mut st, lane.submission) {
                    debug_assert!(sub.slots[lane.index].is_none(), "lane produced twice");
                    sub.slots[lane.index] = Some(Ok(result));
                    sub.remaining -= 1;
                }
            }
        }
        Ok(Err(e)) => {
            // A group error fails every lane of the group, exactly like
            // the per-call batched path failing that group's pool job.
            for lane in &group.lanes {
                if let Some(sub) = find(&mut st, lane.submission) {
                    sub.slots[lane.index] = Some(Err(e.clone()));
                    sub.remaining -= 1;
                }
            }
        }
        Err(payload) => {
            let mut payload = Some(payload);
            for lane in &group.lanes {
                if let Some(sub) = find(&mut st, lane.submission) {
                    sub.poisoned = true;
                    if sub.panic.is_none() {
                        if let Some(p) = payload.take() {
                            sub.panic = Some(p);
                        }
                    }
                    sub.remaining -= 1;
                }
            }
        }
    }
    drop(st);
    shared.done_cv.notify_all();
}

/// The process-wide resident engine, built lazily from the configured
/// knobs ([`crate::parallel::configured_threads`] workers,
/// [`crate::parallel::configured_engine_gather_us`] gather window) on
/// first use. Later knob changes do not rebuild it — results are
/// bit-identical at any worker count, so only throughput could differ;
/// construct a dedicated [`Engine::new`] to pin a shape explicitly.
pub fn global() -> &'static Engine {
    static GLOBAL: OnceLock<Engine> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        Engine::new(
            crate::parallel::configured_threads(),
            Duration::from_micros(crate::parallel::configured_engine_gather_us()),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy_spec::PolicySpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn scenario(seed: u64, m: usize, k: usize, n: usize) -> Scenario {
        let mut rng = StdRng::seed_from_u64(seed);
        Scenario::paper_defaults(m, k, 3, n, &mut rng).unwrap()
    }

    #[test]
    fn empty_submission_completes_immediately() {
        let engine = Engine::new(1, Duration::from_millis(50));
        let (results, stats) = engine.submit_observed(&[], &[]).unwrap();
        assert!(results.is_empty());
        assert_eq!(stats.groups, 0);
        engine.shutdown();
    }

    #[test]
    fn submit_matches_direct_run_policy() {
        let s = scenario(1, 8, 2, 25);
        let jobs: Vec<CellJob> = (0..3)
            .map(|i| CellJob {
                cell: i,
                scenario: &s,
                spec: PolicySpec::Random,
                seed: 40 + i,
            })
            .collect();
        let expect: Vec<RunResult> = jobs
            .iter()
            .map(|j| run_policy(j.scenario, j.spec, j.seed, &[]).unwrap())
            .collect();
        let engine = Engine::new(2, Duration::from_micros(100));
        let got = engine.submit(&jobs, &[]).unwrap();
        assert_eq!(got, expect);
        assert_eq!(engine.submissions_total(), 1);
        assert_eq!(engine.jobs_total(), 3);
        engine.shutdown();
    }

    #[test]
    fn shutdown_rejects_new_submissions() {
        let s = scenario(2, 8, 2, 10);
        let jobs = [CellJob {
            cell: 0,
            scenario: &s,
            spec: PolicySpec::Random,
            seed: 7,
        }];
        let engine = Engine::new(1, Duration::from_micros(100));
        engine.begin_shutdown();
        let err = engine.submit(&jobs, &[]).unwrap_err();
        assert!(matches!(err, CdtError::InvalidConfig { .. }), "{err:?}");
        engine.shutdown();
    }

    #[test]
    fn handles_overlapping_enqueues_from_one_thread() {
        let a = scenario(3, 8, 2, 20);
        let b = scenario(4, 10, 3, 20);
        let jobs_a: Vec<CellJob> = (0..2)
            .map(|i| CellJob {
                cell: i,
                scenario: &a,
                spec: PolicySpec::Random,
                seed: 10 + i,
            })
            .collect();
        let jobs_b: Vec<CellJob> = (0..2)
            .map(|i| CellJob {
                cell: i,
                scenario: &b,
                spec: PolicySpec::CmabHs,
                seed: 20 + i,
            })
            .collect();
        let expect_a = crate::cells::run_cells(&jobs_a, &[]).unwrap();
        let expect_b = crate::cells::run_cells(&jobs_b, &[]).unwrap();
        let engine = Engine::new(1, Duration::from_micros(200));
        let handle_a = engine.enqueue(&jobs_a, &[]);
        let handle_b = engine.enqueue(&jobs_b, &[]);
        let (got_b, _) = handle_b.wait().unwrap();
        let (got_a, _) = handle_a.wait().unwrap();
        assert_eq!(got_a, expect_a);
        assert_eq!(got_b, expect_b);
        engine.shutdown();
    }
}
