//! Single-pass streaming moments via Welford's online algorithm.
//!
//! A full trading job observes `N·K·L` quality samples (up to 2·10⁷ at the
//! paper's largest scale); naive sum-of-squares accumulation loses
//! precision there, Welford's recurrence does not.

use serde::{Deserialize, Serialize};

/// Streaming count / mean / variance / min / max.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamingSummary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for StreamingSummary {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamingSummary {
    /// An empty summary.
    #[must_use]
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Folds one observation in.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Folds a slice of observations in.
    pub fn extend(&mut self, xs: &[f64]) {
        for &x in xs {
            self.push(x);
        }
    }

    /// Merges another summary into this one (parallel aggregation — the
    /// Chan et al. pairwise update).
    pub fn merge(&mut self, other: &StreamingSummary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when fewer than 2 observations).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample (Bessel-corrected) variance.
    #[must_use]
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`None` when empty).
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_summary() {
        let s = StreamingSummary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert!(s.min().is_none());
        assert!(s.max().is_none());
    }

    #[test]
    fn hand_computed_moments() {
        let mut s = StreamingSummary::new();
        s.extend(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12); // classic example
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn single_observation() {
        let mut s = StreamingSummary::new();
        s.push(0.5);
        assert_eq!(s.mean(), 0.5);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs = [0.1, 0.9, 0.4, 0.7, 0.2, 0.6];
        let mut whole = StreamingSummary::new();
        whole.extend(&xs);
        let mut a = StreamingSummary::new();
        a.extend(&xs[..2]);
        let mut b = StreamingSummary::new();
        b.extend(&xs[2..]);
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
        assert!((a.variance() - whole.variance()).abs() < 1e-12);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = StreamingSummary::new();
        s.extend(&[0.3, 0.8]);
        let before = s;
        s.merge(&StreamingSummary::new());
        assert_eq!(s, before);
        let mut e = StreamingSummary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn numerically_stable_for_shifted_data() {
        // Mean 1e9 with tiny variance — naive sum-of-squares would
        // catastrophically cancel.
        let mut s = StreamingSummary::new();
        for i in 0..1000 {
            s.push(1e9 + (i % 3) as f64);
        }
        // Values cycle 0,1,2 around 1e9: variance = 2/3. Welford keeps
        // ~4 significant digits here; the naive sum-of-squares formula
        // would return garbage (catastrophic cancellation at 1e18 scale).
        assert!((s.variance() - 2.0 / 3.0).abs() < 1e-3, "{}", s.variance());
    }

    proptest! {
        /// Streaming results match the two-pass reference on random data.
        #[test]
        fn matches_two_pass_reference(xs in proptest::collection::vec(0.0f64..1.0, 2..200)) {
            let mut s = StreamingSummary::new();
            s.extend(&xs);
            let n = xs.len() as f64;
            let mean = xs.iter().sum::<f64>() / n;
            let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
            prop_assert!((s.mean() - mean).abs() < 1e-10);
            prop_assert!((s.variance() - var).abs() < 1e-10);
        }

        /// Merging arbitrary splits equals the sequential fold.
        #[test]
        fn merge_is_split_invariant(
            xs in proptest::collection::vec(0.0f64..1.0, 1..100),
            split_frac in 0.0f64..1.0,
        ) {
            let split = ((xs.len() as f64) * split_frac) as usize;
            let mut whole = StreamingSummary::new();
            whole.extend(&xs);
            let mut a = StreamingSummary::new();
            a.extend(&xs[..split]);
            let mut b = StreamingSummary::new();
            b.extend(&xs[split..]);
            a.merge(&b);
            prop_assert_eq!(a.count(), whole.count());
            prop_assert!((a.mean() - whole.mean()).abs() < 1e-10);
            prop_assert!((a.variance() - whole.variance()).abs() < 1e-10);
        }
    }
}
