//! # cdt-aggregate
//!
//! The platform's **data aggregation service** — the substrate behind
//! Def. 2 of the paper: *"the platform can provide data aggregation
//! service for some consumers who prefer to purchase the data statistics
//! rather than the original chaotic data"*.
//!
//! The paper models the aggregation *cost* (`C^J`, Eq. 8) but leaves the
//! aggregation computation itself abstract; a deployable CDT system needs
//! it, so this crate provides:
//!
//! - [`summary`]: single-pass streaming moments (count/mean/variance/
//!   min/max via Welford's algorithm) — numerically stable over the
//!   `N·K·L` observations of a long trading job;
//! - [`histogram`]: fixed-range histograms over the `[0, 1]` quality
//!   domain with quantile queries;
//! - [`sketch`]: the P² (Jain–Chlamtac) streaming quantile estimator, for
//!   quantiles without storing observations;
//! - [`report`]: per-PoI and cross-PoI aggregation of a round's
//!   [`ObservationMatrix`](cdt_quality::ObservationMatrix) into the
//!   statistics bundle delivered to the consumer, weighted by the learned
//!   seller qualities.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod histogram;
pub mod report;
pub mod sketch;
pub mod summary;

pub use histogram::Histogram;
pub use report::{aggregate_round, PoiStatistics, RoundStatistics};
pub use sketch::P2Quantile;
pub use summary::StreamingSummary;
