//! Fixed-range histograms over the `[0, 1]` quality domain.

use serde::{Deserialize, Serialize};

/// An equal-width histogram on `[0, 1]` with quantile queries.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    bins: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width buckets on `[0, 1]`.
    ///
    /// # Panics
    /// Panics if `bins == 0`.
    #[must_use]
    pub fn new(bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        Self {
            bins: vec![0; bins],
            total: 0,
        }
    }

    /// Number of buckets.
    #[must_use]
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// Total observations recorded.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Records one observation; values outside `[0, 1]` clamp to the edge
    /// buckets (the quality domain guarantees they do not occur, but the
    /// histogram must not lose counts if a caller feeds raw data).
    pub fn record(&mut self, x: f64) {
        let n = self.bins.len();
        let idx = ((x * n as f64).floor() as isize).clamp(0, n as isize - 1) as usize;
        self.bins[idx] += 1;
        self.total += 1;
    }

    /// Records a slice of observations.
    pub fn extend(&mut self, xs: &[f64]) {
        for &x in xs {
            self.record(x);
        }
    }

    /// Count in bucket `i`.
    #[must_use]
    pub fn bin_count(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// The `[lo, hi)` value range of bucket `i` (the last bucket is
    /// closed at 1).
    #[must_use]
    pub fn bin_range(&self, i: usize) -> (f64, f64) {
        let w = 1.0 / self.bins.len() as f64;
        (i as f64 * w, (i as f64 + 1.0) * w)
    }

    /// Merges another histogram (same bin count) into this one.
    ///
    /// # Panics
    /// Panics if the bin counts differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bins.len(), other.bins.len(), "bin layouts differ");
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.total += other.total;
    }

    /// Approximate `q`-quantile (`q ∈ [0, 1]`) by linear interpolation
    /// within the bucket containing the target rank. Returns `None` when
    /// empty.
    ///
    /// # Panics
    /// Panics unless `q ∈ [0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile requires q in [0,1]");
        if self.total == 0 {
            return None;
        }
        let target = q * self.total as f64;
        let mut cum = 0.0;
        for (i, &c) in self.bins.iter().enumerate() {
            let next = cum + c as f64;
            if next >= target && c > 0 {
                let (lo, hi) = self.bin_range(i);
                let frac = if c == 0 {
                    0.0
                } else {
                    (target - cum) / c as f64
                };
                return Some(lo + frac.clamp(0.0, 1.0) * (hi - lo));
            }
            cum = next;
        }
        Some(1.0)
    }

    /// The fraction of mass in each bucket (empty histogram → all zeros).
    #[must_use]
    pub fn densities(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.bins.len()];
        }
        self.bins
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn records_into_correct_bins() {
        let mut h = Histogram::new(4);
        h.extend(&[0.1, 0.3, 0.6, 0.9, 0.95]);
        assert_eq!(h.bin_count(0), 1);
        assert_eq!(h.bin_count(1), 1);
        assert_eq!(h.bin_count(2), 1);
        assert_eq!(h.bin_count(3), 2);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn boundary_values() {
        let mut h = Histogram::new(4);
        h.record(0.0);
        h.record(1.0); // exactly 1.0 lands in the last (closed) bucket
        h.record(0.25); // bucket boundary goes to the upper bucket
        assert_eq!(h.bin_count(0), 1);
        assert_eq!(h.bin_count(1), 1);
        assert_eq!(h.bin_count(3), 1);
    }

    #[test]
    fn out_of_range_clamps() {
        let mut h = Histogram::new(2);
        h.record(-0.5);
        h.record(1.5);
        assert_eq!(h.bin_count(0), 1);
        assert_eq!(h.bin_count(1), 1);
        assert_eq!(h.total(), 2);
    }

    #[test]
    fn quantiles_interpolate() {
        let mut h = Histogram::new(10);
        // Uniform-ish mass: one observation per bucket midpoint.
        for i in 0..10 {
            h.record(0.05 + 0.1 * i as f64);
        }
        let median = h.quantile(0.5).unwrap();
        assert!((median - 0.5).abs() < 0.1, "median {median}");
        let q0 = h.quantile(0.0).unwrap();
        assert!(q0 <= 0.1);
        assert_eq!(h.quantile(1.0).unwrap(), 1.0);
    }

    #[test]
    fn quantile_of_empty_is_none() {
        assert!(Histogram::new(4).quantile(0.5).is_none());
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new(4);
        a.extend(&[0.1, 0.6]);
        let mut b = Histogram::new(4);
        b.extend(&[0.7, 0.8, 0.9]);
        a.merge(&b);
        assert_eq!(a.total(), 5);
        assert_eq!(a.bin_count(2), 2); // 0.6, 0.7
    }

    #[test]
    #[should_panic(expected = "bin layouts differ")]
    fn merge_rejects_mismatched_layouts() {
        let mut a = Histogram::new(4);
        a.merge(&Histogram::new(8));
    }

    #[test]
    fn densities_sum_to_one() {
        let mut h = Histogram::new(7);
        h.extend(&[0.0, 0.2, 0.4, 0.6, 0.8, 1.0]);
        let sum: f64 = h.densities().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    proptest! {
        /// Quantiles are monotone in q and stay within [0, 1].
        #[test]
        fn quantiles_are_monotone(xs in proptest::collection::vec(0.0f64..=1.0, 1..200)) {
            let mut h = Histogram::new(16);
            h.extend(&xs);
            let mut last = 0.0;
            for i in 0..=10 {
                let q = h.quantile(i as f64 / 10.0).unwrap();
                prop_assert!((0.0..=1.0).contains(&q));
                prop_assert!(q >= last - 1e-12, "quantiles must not decrease");
                last = q;
            }
        }

        /// Total count is conserved regardless of values.
        #[test]
        fn total_is_conserved(xs in proptest::collection::vec(-1.0f64..2.0, 0..100)) {
            let mut h = Histogram::new(8);
            h.extend(&xs);
            prop_assert_eq!(h.total(), xs.len() as u64);
        }
    }
}
