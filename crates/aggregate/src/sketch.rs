//! The P² (Jain & Chlamtac, 1985) streaming quantile estimator.
//!
//! Estimates a single quantile with five markers and O(1) memory —
//! appropriate for the platform, which aggregates millions of quality
//! observations per job but sells only summary statistics.

use serde::{Deserialize, Serialize};

/// Streaming estimator of one `q`-quantile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights (estimates of the 0, q/2, q, (1+q)/2, 1 quantiles).
    heights: [f64; 5],
    /// Actual marker positions (1-based ranks).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired-position increments per observation.
    increments: [f64; 5],
    count: usize,
    /// First five observations, buffered until initialization.
    bootstrap: Vec<f64>,
}

impl P2Quantile {
    /// Creates an estimator for the `q`-quantile.
    ///
    /// # Panics
    /// Panics unless `q ∈ (0, 1)`.
    #[must_use]
    pub fn new(q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "P2 requires q in (0, 1), got {q}");
        Self {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
            bootstrap: Vec::with_capacity(5),
        }
    }

    /// Number of observations seen.
    #[must_use]
    pub fn count(&self) -> usize {
        self.count
    }

    /// Feeds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        if self.count <= 5 {
            self.bootstrap.push(x);
            if self.count == 5 {
                self.bootstrap
                    .sort_by(|a, b| a.partial_cmp(b).expect("finite observations"));
                for (h, &v) in self.heights.iter_mut().zip(&self.bootstrap) {
                    *h = v;
                }
            }
            return;
        }

        // Find the cell k containing x and update extreme heights.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x.max(self.heights[4]);
            3
        } else {
            let mut cell = 0;
            for i in 0..4 {
                if self.heights[i] <= x && x < self.heights[i + 1] {
                    cell = i;
                    break;
                }
            }
            cell
        };

        for p in self.positions.iter_mut().skip(k + 1) {
            *p += 1.0;
        }
        for (d, inc) in self.desired.iter_mut().zip(&self.increments) {
            *d += inc;
        }

        // Adjust interior markers with parabolic (fallback linear) moves.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right = self.positions[i + 1] - self.positions[i];
            let left = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right > 1.0) || (d <= -1.0 && left < -1.0) {
                let d = d.signum();
                let parabolic = self.parabolic(i, d);
                let new_h = if self.heights[i - 1] < parabolic && parabolic < self.heights[i + 1] {
                    parabolic
                } else {
                    self.linear(i, d)
                };
                self.heights[i] = new_h;
                self.positions[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let p = &self.positions;
        let h = &self.heights;
        h[i] + d / (p[i + 1] - p[i - 1])
            * ((p[i] - p[i - 1] + d) * (h[i + 1] - h[i]) / (p[i + 1] - p[i])
                + (p[i + 1] - p[i] - d) * (h[i] - h[i - 1]) / (p[i] - p[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.heights[i]
            + d * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// The current quantile estimate (`None` until any data arrives; exact
    /// small-sample quantile before the 5-observation bootstrap fills).
    #[must_use]
    pub fn estimate(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if self.count < 5 {
            let mut v = self.bootstrap.clone();
            v.sort_by(|a, b| a.partial_cmp(b).expect("finite observations"));
            let idx = ((self.q * v.len() as f64).ceil() as usize).clamp(1, v.len()) - 1;
            return Some(v[idx]);
        }
        Some(self.heights[2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn exact_quantile(xs: &mut [f64], q: f64) -> f64 {
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let idx = ((q * xs.len() as f64).ceil() as usize).clamp(1, xs.len()) - 1;
        xs[idx]
    }

    #[test]
    fn median_of_uniform_stream() {
        let mut p2 = P2Quantile::new(0.5);
        let mut rng = StdRng::seed_from_u64(1);
        let mut xs: Vec<f64> = (0..50_000).map(|_| rng.gen_range(0.0..1.0)).collect();
        for &x in &xs {
            p2.push(x);
        }
        let exact = exact_quantile(&mut xs, 0.5);
        let est = p2.estimate().unwrap();
        assert!((est - exact).abs() < 0.01, "est {est} vs exact {exact}");
    }

    #[test]
    fn tail_quantile_of_skewed_stream() {
        let mut p2 = P2Quantile::new(0.95);
        let mut rng = StdRng::seed_from_u64(2);
        // Beta(2,5)-ish skew via the square of a uniform.
        let mut xs: Vec<f64> = (0..50_000)
            .map(|_| {
                let u: f64 = rng.gen_range(0.0..1.0);
                u * u
            })
            .collect();
        for &x in &xs {
            p2.push(x);
        }
        let exact = exact_quantile(&mut xs, 0.95);
        let est = p2.estimate().unwrap();
        assert!((est - exact).abs() < 0.02, "est {est} vs exact {exact}");
    }

    #[test]
    fn small_samples_are_exact() {
        let mut p2 = P2Quantile::new(0.5);
        assert!(p2.estimate().is_none());
        p2.push(0.9);
        assert_eq!(p2.estimate(), Some(0.9));
        p2.push(0.1);
        p2.push(0.5);
        // Exact median of {0.1, 0.5, 0.9}.
        assert_eq!(p2.estimate(), Some(0.5));
    }

    #[test]
    fn constant_stream_estimates_the_constant() {
        let mut p2 = P2Quantile::new(0.3);
        for _ in 0..1000 {
            p2.push(0.42);
        }
        assert!((p2.estimate().unwrap() - 0.42).abs() < 1e-12);
    }

    #[test]
    fn estimate_stays_within_observed_range() {
        let mut p2 = P2Quantile::new(0.5);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            p2.push(rng.gen_range(0.25..0.75));
        }
        let est = p2.estimate().unwrap();
        assert!((0.25..=0.75).contains(&est));
    }

    #[test]
    #[should_panic(expected = "P2 requires q in (0, 1)")]
    fn rejects_degenerate_quantile() {
        let _ = P2Quantile::new(1.0);
    }
}
