//! The statistics bundle the platform delivers to the consumer each round
//! (the product of Def. 2's aggregation service).
//!
//! Per Def. 4, the *valuation* of the bundle depends on the sensing time
//! and the mean quality; the bundle itself carries per-PoI and cross-PoI
//! statistics, with an optional quality-weighted view (higher-quality
//! sellers' readings count for more — the reason quality-aware selection
//! matters commercially).

use crate::histogram::Histogram;
use crate::summary::StreamingSummary;
use cdt_quality::ObservationMatrix;
use cdt_types::{PoiId, SellerId};
use serde::{Deserialize, Serialize};

/// Statistics over one PoI's readings in a round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoiStatistics {
    /// Which PoI.
    pub poi: PoiId,
    /// Unweighted streaming moments over the K sellers' readings.
    pub summary: StreamingSummary,
    /// Quality-weighted mean: `Σ w_i x_i / Σ w_i` with `w_i = q̄_i`.
    pub weighted_mean: f64,
}

/// The full per-round statistics bundle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundStatistics {
    /// One entry per PoI, in PoI order.
    pub per_poi: Vec<PoiStatistics>,
    /// Cross-PoI moments over all `K·L` readings.
    pub overall: StreamingSummary,
    /// Distribution of all readings (16 buckets over `[0, 1]`).
    pub histogram: Histogram,
    /// Sellers that contributed, in selection order.
    pub contributors: Vec<SellerId>,
}

impl RoundStatistics {
    /// Approximate median of all readings.
    #[must_use]
    pub fn median(&self) -> Option<f64> {
        self.histogram.quantile(0.5)
    }
}

/// Aggregates one round's observation matrix into the consumer-facing
/// statistics bundle. `weights[s]` is the platform's current quality
/// estimate for the `s`-th *selected* seller (selection order); pass
/// uniform weights for a quality-agnostic bundle.
///
/// # Panics
/// Panics if `weights.len()` differs from the number of selected sellers.
#[must_use]
pub fn aggregate_round(observations: &ObservationMatrix, weights: &[f64]) -> RoundStatistics {
    assert_eq!(
        weights.len(),
        observations.sellers().len(),
        "one weight per selected seller"
    );
    let l = observations.num_pois();
    let total_weight: f64 = weights.iter().sum();

    let mut per_poi = Vec::with_capacity(l);
    let mut overall = StreamingSummary::new();
    let mut histogram = Histogram::new(16);

    for poi in 0..l {
        let mut summary = StreamingSummary::new();
        let mut weighted = 0.0;
        for (s, _) in observations.sellers().iter().enumerate() {
            let x = observations.get(s, PoiId(poi));
            summary.push(x);
            overall.push(x);
            histogram.record(x);
            weighted += weights[s] * x;
        }
        let weighted_mean = if total_weight > 0.0 {
            weighted / total_weight
        } else {
            summary.mean()
        };
        per_poi.push(PoiStatistics {
            poi: PoiId(poi),
            summary,
            weighted_mean,
        });
    }

    RoundStatistics {
        per_poi,
        overall,
        histogram,
        contributors: observations.sellers().to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix() -> ObservationMatrix {
        ObservationMatrix::new(
            vec![SellerId(0), SellerId(1)],
            vec![vec![0.2, 0.4, 0.6], vec![0.8, 0.6, 0.4]],
        )
    }

    #[test]
    fn per_poi_statistics() {
        let stats = aggregate_round(&matrix(), &[1.0, 1.0]);
        assert_eq!(stats.per_poi.len(), 3);
        // PoI 0: readings {0.2, 0.8} → mean 0.5.
        assert!((stats.per_poi[0].summary.mean() - 0.5).abs() < 1e-12);
        assert_eq!(stats.per_poi[0].summary.count(), 2);
        assert_eq!(stats.per_poi[0].poi, PoiId(0));
    }

    #[test]
    fn overall_covers_all_readings() {
        let stats = aggregate_round(&matrix(), &[1.0, 1.0]);
        assert_eq!(stats.overall.count(), 6);
        assert!((stats.overall.mean() - 0.5).abs() < 1e-12);
        assert_eq!(stats.histogram.total(), 6);
    }

    #[test]
    fn weights_shift_the_weighted_mean() {
        // Give seller 1 (the 0.8 reading at PoI 0) all the weight.
        let stats = aggregate_round(&matrix(), &[0.0, 1.0]);
        assert!((stats.per_poi[0].weighted_mean - 0.8).abs() < 1e-12);
        // Equal weights → plain mean.
        let eq = aggregate_round(&matrix(), &[0.5, 0.5]);
        assert!((eq.per_poi[0].weighted_mean - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_total_weight_falls_back_to_unweighted() {
        let stats = aggregate_round(&matrix(), &[0.0, 0.0]);
        assert!((stats.per_poi[1].weighted_mean - 0.5).abs() < 1e-12);
    }

    #[test]
    fn contributors_preserved_in_order() {
        let stats = aggregate_round(&matrix(), &[1.0, 1.0]);
        assert_eq!(stats.contributors, vec![SellerId(0), SellerId(1)]);
    }

    #[test]
    fn median_is_sane() {
        let stats = aggregate_round(&matrix(), &[1.0, 1.0]);
        let m = stats.median().unwrap();
        assert!((0.3..=0.7).contains(&m), "median {m}");
    }

    #[test]
    #[should_panic(expected = "one weight per selected seller")]
    fn weight_arity_is_enforced() {
        let _ = aggregate_round(&matrix(), &[1.0]);
    }
}
