//! # cdt-bandit
//!
//! The combinatorial multi-armed bandit (CMAB) substrate of CMAB-HS
//! (An et al., ICDE 2021, Secs. II-B, III-A and IV-A).
//!
//! The platform treats each of the `M` sellers as an arm and pulls `K` arms
//! per round (Def. 6). This crate provides:
//!
//! - [`estimator`]: the sample-mean quality learner of Eqs. 17–18 (the
//!   counter credits `L` observations per selection because a selected
//!   seller covers all `L` PoIs);
//! - [`index`]: the extended UCB index of Eq. 19,
//!   `q̂_i = q̄_i + sqrt((K+1)·ln(Σ_j n_j) / n_i)`;
//! - [`topk`]: deterministic top-K selection;
//! - [`policy`]: the [`SelectionPolicy`] abstraction plus all policies used
//!   in the paper's evaluation (CMAB-HS UCB, ε-first, random, optimal) and
//!   two extensions (ε-greedy, Thompson sampling, classical CUCB);
//! - [`regret`]: regret accounting against the clairvoyant optimal policy
//!   and the closed-form bound of Lemma 18 / Theorem 19.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod batch;
pub mod estimator;
pub mod index;
pub mod policies;
pub mod policy;
pub mod regret;
pub mod topk;
pub mod windowed;

pub use batch::{BatchCmabUcb, BatchSelectionPolicy, LanePolicies};
pub use estimator::QualityEstimator;
pub use index::{ucb_indices, UcbConfig};
pub use policies::{
    CmabUcbPolicy, CucbPolicy, EpsilonFirstPolicy, EpsilonGreedyPolicy, OraclePolicy, RandomPolicy,
    SlidingWindowUcbPolicy, ThompsonPolicy,
};
pub use policy::SelectionPolicy;
pub use regret::{gap_statistics, theoretical_regret_bound, GapStatistics, RegretAccountant};
pub use topk::top_k_by_score;
pub use windowed::{DiscountedEstimator, SlidingWindowEstimator};
