//! The [`SelectionPolicy`] abstraction: anything that can pick `K` sellers
//! per round and learn from the resulting observations.
//!
//! The trait is object-safe (`&mut dyn RngCore`) so the simulation engine
//! can run a heterogeneous set of policies side by side on identical
//! workloads.

use crate::estimator::QualityEstimator;
use cdt_quality::ObservationMatrix;
use cdt_types::{Round, SellerId};
use rand::RngCore;

/// A per-round seller-selection policy (a CMAB arm-pulling policy, Def. 7).
pub trait SelectionPolicy {
    /// Human-readable name, including distinguishing parameters
    /// (e.g. `"CMAB-HS"`, `"0.1-first"`, `"random"`).
    fn name(&self) -> String;

    /// Chooses the sellers for `round`. Must return exactly `K` distinct
    /// ids — except policies that perform a full initial sweep
    /// (Algorithm 1 selects *all* `M` sellers in round 0).
    fn select(&mut self, round: Round, rng: &mut dyn RngCore) -> Vec<SellerId>;

    /// Chooses the sellers for `round`, writing them into `out` so the
    /// caller can reuse one selection buffer across all `N` rounds.
    ///
    /// Must produce exactly the same ids, in the same order, and consume
    /// the RNG identically to [`SelectionPolicy::select`]. The default
    /// implementation delegates to `select` (correct but allocating);
    /// hot-path policies override it to fill `out` in place.
    fn select_into(&mut self, round: Round, rng: &mut dyn RngCore, out: &mut Vec<SellerId>) {
        out.clear();
        out.extend(self.select(round, rng));
    }

    /// Feeds back the observed qualities of the sellers selected in
    /// `round`. Every policy learns (the platform sees the data it buys
    /// regardless of how it selected), even if its *selection* ignores the
    /// estimates (e.g. `random`).
    fn observe(&mut self, round: Round, observations: &ObservationMatrix);

    /// The quality estimate handed to the Stackelberg game for seller `id`
    /// (`q̄_i^t` for learning policies; the true `q_i` for the clairvoyant
    /// optimal policy).
    fn game_quality(&self, id: SellerId) -> f64;

    /// The ranking score the policy's *selection* step assigns to seller
    /// `id` — the extended-UCB index `q̂_i` (Eq. 19) for CMAB-HS. Purely
    /// diagnostic (observability traces); defaults to the game-side quality
    /// estimate for policies without a selection index.
    fn selection_score(&self, id: SellerId) -> f64 {
        self.game_quality(id)
    }

    /// Read access to the policy's estimator state.
    fn estimator(&self) -> &QualityEstimator;
}

/// Draws `k` distinct seller ids uniformly at random from `0..m`.
///
/// # Panics
/// Panics if `k > m`.
pub(crate) fn random_k_subset(m: usize, k: usize, rng: &mut dyn RngCore) -> Vec<SellerId> {
    let mut out = Vec::with_capacity(k);
    random_k_subset_into(m, k, rng, &mut out);
    out
}

/// As [`random_k_subset`], but writes into `out` (same draws, same order).
///
/// # Panics
/// Panics if `k > m`.
pub(crate) fn random_k_subset_into(
    m: usize,
    k: usize,
    rng: &mut dyn RngCore,
    out: &mut Vec<SellerId>,
) {
    assert!(k <= m, "cannot draw {k} distinct sellers from {m}");
    out.clear();
    out.extend(
        rand::seq::index::sample(rng, m, k)
            .into_iter()
            .map(SellerId),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    #[test]
    fn random_subset_is_distinct_and_sized() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let s = random_k_subset(10, 4, &mut rng);
            let set: HashSet<_> = s.iter().collect();
            assert_eq!(s.len(), 4);
            assert_eq!(set.len(), 4);
            assert!(s.iter().all(|id| id.index() < 10));
        }
    }

    #[test]
    fn random_subset_k_equals_m() {
        let mut rng = StdRng::seed_from_u64(2);
        let s = random_k_subset(5, 5, &mut rng);
        let set: HashSet<_> = s.iter().map(|id| id.index()).collect();
        assert_eq!(set, (0..5).collect());
    }

    #[test]
    #[should_panic(expected = "cannot draw")]
    fn random_subset_rejects_k_beyond_m() {
        let mut rng = StdRng::seed_from_u64(3);
        let _ = random_k_subset(3, 4, &mut rng);
    }

    #[test]
    fn random_subset_into_matches_owned_variant() {
        let mut out = Vec::new();
        for seed in 0..20 {
            let owned = random_k_subset(12, 5, &mut StdRng::seed_from_u64(seed));
            let mut rng = StdRng::seed_from_u64(seed);
            random_k_subset_into(12, 5, &mut rng, &mut out);
            assert_eq!(owned, out);
        }
    }

    #[test]
    fn random_subset_covers_all_sellers_eventually() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = HashSet::new();
        for _ in 0..200 {
            for id in random_k_subset(20, 3, &mut rng) {
                seen.insert(id.index());
            }
        }
        assert_eq!(seen.len(), 20, "uniform sampling must reach every arm");
    }
}
