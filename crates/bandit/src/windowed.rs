//! Non-stationary estimators: sliding-window and discounted sample means.
//!
//! The paper assumes fixed expected qualities `q_i` (Def. 3); its Remark
//! acknowledges exogenous factors can move them. These estimators forget
//! old observations so the UCB machinery can track drifting qualities:
//!
//! - [`SlidingWindowEstimator`]: exact mean over the last `W` observations
//!   per seller (Garivier & Moulines' SW-UCB statistic);
//! - [`DiscountedEstimator`]: exponentially-weighted mean with discount
//!   `γ ∈ (0, 1)` (D-UCB statistic), O(1) memory.

use cdt_quality::ObservationMatrix;
use cdt_types::SellerId;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// How many observations a seller may accumulate before its incremental
/// window sum is re-derived from scratch (float-drift guard).
const DRIFT_RESYNC_INTERVAL: u64 = 1 << 20;

/// Per-seller mean over the most recent `W` observations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlidingWindowEstimator {
    windows: Vec<VecDeque<f64>>,
    sums: Vec<f64>,
    window: usize,
    total_seen: u64,
    /// Observations folded into each seller since its sum was last
    /// re-derived; compared `>=` against the interval so multi-observation
    /// rows that step over the threshold still trigger the resync.
    since_resync: Vec<u64>,
    resync_interval: u64,
    resyncs: u64,
}

impl SlidingWindowEstimator {
    /// Creates an estimator over `m` sellers with window size `window`.
    ///
    /// # Panics
    /// Panics if `window == 0`.
    #[must_use]
    pub fn new(m: usize, window: usize) -> Self {
        Self::with_resync_interval(m, window, DRIFT_RESYNC_INTERVAL)
    }

    /// As [`SlidingWindowEstimator::new`], with an explicit drift-resync
    /// interval (observations per seller between exact re-summations).
    ///
    /// # Panics
    /// Panics if `window == 0` or `resync_interval == 0`.
    #[must_use]
    pub fn with_resync_interval(m: usize, window: usize, resync_interval: u64) -> Self {
        assert!(window > 0, "window must hold at least one observation");
        assert!(resync_interval > 0, "resync interval must be positive");
        Self {
            windows: (0..m).map(|_| VecDeque::with_capacity(window)).collect(),
            sums: vec![0.0; m],
            window,
            total_seen: 0,
            since_resync: vec![0; m],
            resync_interval,
            resyncs: 0,
        }
    }

    /// How many times a drift resync has fired (any seller).
    #[must_use]
    pub fn resyncs(&self) -> u64 {
        self.resyncs
    }

    /// Number of sellers.
    #[must_use]
    pub fn num_sellers(&self) -> usize {
        self.windows.len()
    }

    /// Observations currently inside seller `i`'s window.
    #[must_use]
    pub fn count(&self, id: SellerId) -> u64 {
        self.windows[id.index()].len() as u64
    }

    /// Lifetime observation count across all sellers (for the UCB log).
    #[must_use]
    pub fn total_seen(&self) -> u64 {
        self.total_seen
    }

    /// Windowed mean of seller `i` (0 before any observation).
    #[must_use]
    pub fn mean(&self, id: SellerId) -> f64 {
        let i = id.index();
        if self.windows[i].is_empty() {
            0.0
        } else {
            self.sums[i] / self.windows[i].len() as f64
        }
    }

    /// Folds one seller's per-PoI observations in, evicting beyond the
    /// window.
    pub fn update(&mut self, id: SellerId, observations: &[f64]) {
        let i = id.index();
        for &q in observations {
            debug_assert!((0.0..=1.0).contains(&q));
            if self.windows[i].len() == self.window {
                let old = self.windows[i].pop_front().expect("window is full");
                self.sums[i] -= old;
            }
            self.windows[i].push_back(q);
            self.sums[i] += q;
            self.total_seen += 1;
        }
        // Guard against drift of the incremental sum over very long runs.
        // Tracked per seller with a `>=` threshold: an L-observation row
        // that steps over the interval still triggers, and every seller
        // gets its own correction (a global exact-multiple check on
        // `total_seen` would essentially never fire for L > 1 and would
        // only ever refresh the seller being updated).
        self.since_resync[i] += observations.len() as u64;
        if self.since_resync[i] >= self.resync_interval {
            self.sums[i] = self.windows[i].iter().sum();
            self.since_resync[i] = 0;
            self.resyncs += 1;
        }
    }

    /// Folds a whole round in.
    pub fn update_round(&mut self, observations: &ObservationMatrix) {
        for (id, row) in observations.iter() {
            self.update(id, row);
        }
    }
}

/// Exponentially-discounted per-seller mean: after each new observation
/// batch, older weight decays by `γ` per observation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiscountedEstimator {
    weighted_sums: Vec<f64>,
    weights: Vec<f64>,
    gamma: f64,
    total_seen: u64,
}

impl DiscountedEstimator {
    /// Creates an estimator with discount factor `γ ∈ (0, 1]` (`γ = 1`
    /// degenerates to the plain sample mean).
    ///
    /// # Panics
    /// Panics unless `γ ∈ (0, 1]`.
    #[must_use]
    pub fn new(m: usize, gamma: f64) -> Self {
        assert!(gamma > 0.0 && gamma <= 1.0, "gamma must lie in (0, 1]");
        Self {
            weighted_sums: vec![0.0; m],
            weights: vec![0.0; m],
            gamma,
            total_seen: 0,
        }
    }

    /// Number of sellers.
    #[must_use]
    pub fn num_sellers(&self) -> usize {
        self.weights.len()
    }

    /// The effective (discounted) observation count of seller `i`.
    #[must_use]
    pub fn effective_count(&self, id: SellerId) -> f64 {
        self.weights[id.index()]
    }

    /// Lifetime observation count across all sellers.
    #[must_use]
    pub fn total_seen(&self) -> u64 {
        self.total_seen
    }

    /// Discounted mean of seller `i` (0 before any observation).
    #[must_use]
    pub fn mean(&self, id: SellerId) -> f64 {
        let i = id.index();
        if self.weights[i] <= 0.0 {
            0.0
        } else {
            self.weighted_sums[i] / self.weights[i]
        }
    }

    /// Folds one seller's observations in.
    pub fn update(&mut self, id: SellerId, observations: &[f64]) {
        let i = id.index();
        for &q in observations {
            debug_assert!((0.0..=1.0).contains(&q));
            self.weighted_sums[i] = self.gamma * self.weighted_sums[i] + q;
            self.weights[i] = self.gamma * self.weights[i] + 1.0;
            self.total_seen += 1;
        }
    }

    /// Folds a whole round in.
    pub fn update_round(&mut self, observations: &ObservationMatrix) {
        for (id, row) in observations.iter() {
            self.update(id, row);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn window_mean_tracks_recent_values() {
        let mut e = SlidingWindowEstimator::new(1, 4);
        e.update(SellerId(0), &[0.2, 0.2, 0.2, 0.2]);
        assert!((e.mean(SellerId(0)) - 0.2).abs() < 1e-12);
        // Regime change: four new high values evict the old ones.
        e.update(SellerId(0), &[0.9, 0.9, 0.9, 0.9]);
        assert!((e.mean(SellerId(0)) - 0.9).abs() < 1e-12);
        assert_eq!(e.count(SellerId(0)), 4);
        assert_eq!(e.total_seen(), 8);
    }

    #[test]
    fn partial_window() {
        let mut e = SlidingWindowEstimator::new(2, 10);
        e.update(SellerId(1), &[0.4, 0.8]);
        assert!((e.mean(SellerId(1)) - 0.6).abs() < 1e-12);
        assert_eq!(e.count(SellerId(1)), 2);
        assert_eq!(e.mean(SellerId(0)), 0.0);
    }

    #[test]
    fn window_eviction_is_fifo() {
        let mut e = SlidingWindowEstimator::new(1, 3);
        e.update(SellerId(0), &[0.0, 0.3, 0.6, 0.9]);
        // Window holds {0.3, 0.6, 0.9}.
        assert!((e.mean(SellerId(0)) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn discounted_mean_follows_regime_change_smoothly() {
        let mut e = DiscountedEstimator::new(1, 0.9);
        for _ in 0..100 {
            e.update(SellerId(0), &[0.2]);
        }
        assert!((e.mean(SellerId(0)) - 0.2).abs() < 1e-9);
        for _ in 0..50 {
            e.update(SellerId(0), &[0.9]);
        }
        // With γ = 0.9, after 50 new samples the old regime's weight is
        // 0.9^50 ≈ 0.005 — essentially forgotten.
        assert!((e.mean(SellerId(0)) - 0.9).abs() < 0.01);
    }

    #[test]
    fn gamma_one_is_plain_mean() {
        let mut e = DiscountedEstimator::new(1, 1.0);
        e.update(SellerId(0), &[0.2, 0.4, 0.9]);
        assert!((e.mean(SellerId(0)) - 0.5).abs() < 1e-12);
        assert!((e.effective_count(SellerId(0)) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn drift_resync_fires_across_multi_observation_rows() {
        // Regression: rows of L=3 observations never land `total_seen` on
        // an exact multiple of the interval, so the old global
        // `is_multiple_of` guard never fired. The per-seller `>=` counter
        // must fire on the row that steps over the threshold.
        let mut e = SlidingWindowEstimator::with_resync_interval(2, 4, 8);
        for _ in 0..2 {
            e.update(SellerId(0), &[0.5, 0.4, 0.3]); // 6 < 8: no resync yet
        }
        assert_eq!(e.resyncs(), 0);
        e.update(SellerId(0), &[0.2, 0.1, 0.6]); // 9 >= 8: fires
        assert_eq!(e.resyncs(), 1);
        // The counter is per seller: seller 1's rows do not inherit
        // seller 0's progress.
        e.update(SellerId(1), &[0.5, 0.5, 0.5]);
        e.update(SellerId(1), &[0.5, 0.5, 0.5]);
        assert_eq!(e.resyncs(), 1);
        e.update(SellerId(1), &[0.5, 0.5]); // 8 >= 8: fires
        assert_eq!(e.resyncs(), 2);
        // The re-derived sum still matches the window exactly.
        assert!((e.mean(SellerId(0)) - (0.3 + 0.2 + 0.1 + 0.6) / 4.0).abs() < 1e-12);
    }

    #[test]
    fn drift_resync_counter_resets_after_firing() {
        let mut e = SlidingWindowEstimator::with_resync_interval(1, 2, 4);
        e.update(SellerId(0), &[0.1, 0.2, 0.3, 0.4]); // 4 >= 4: fires
        assert_eq!(e.resyncs(), 1);
        e.update(SellerId(0), &[0.5, 0.6, 0.7]); // 3 < 4 after reset
        assert_eq!(e.resyncs(), 1);
        e.update(SellerId(0), &[0.8]); // 4 >= 4: fires again
        assert_eq!(e.resyncs(), 2);
    }

    #[test]
    #[should_panic(expected = "window must hold")]
    fn zero_window_rejected() {
        let _ = SlidingWindowEstimator::new(1, 0);
    }

    #[test]
    #[should_panic(expected = "resync interval must be positive")]
    fn zero_resync_interval_rejected() {
        let _ = SlidingWindowEstimator::with_resync_interval(1, 4, 0);
    }

    #[test]
    #[should_panic(expected = "gamma must lie in (0, 1]")]
    fn bad_gamma_rejected() {
        let _ = DiscountedEstimator::new(1, 0.0);
    }

    proptest! {
        /// The windowed mean equals the mean of the last W observations.
        #[test]
        fn window_matches_suffix_mean(
            obs in proptest::collection::vec(0.0f64..=1.0, 1..100),
            window in 1usize..20,
        ) {
            let mut e = SlidingWindowEstimator::new(1, window);
            e.update(SellerId(0), &obs);
            let tail = &obs[obs.len().saturating_sub(window)..];
            let expect = tail.iter().sum::<f64>() / tail.len() as f64;
            prop_assert!((e.mean(SellerId(0)) - expect).abs() < 1e-9);
            prop_assert_eq!(e.count(SellerId(0)) as usize, tail.len());
        }

        /// Drift resyncs are behavior-preserving: with a tiny interval
        /// (firing on nearly every row) the windowed mean still equals
        /// the exact suffix mean.
        #[test]
        fn resync_preserves_window_mean(
            obs in proptest::collection::vec(0.0f64..=1.0, 1..100),
            window in 1usize..20,
            interval in 1u64..8,
        ) {
            let mut e = SlidingWindowEstimator::with_resync_interval(1, window, interval);
            for row in obs.chunks(3) {
                e.update(SellerId(0), row);
            }
            let tail = &obs[obs.len().saturating_sub(window)..];
            let expect = tail.iter().sum::<f64>() / tail.len() as f64;
            prop_assert!((e.mean(SellerId(0)) - expect).abs() < 1e-9);
        }

        /// Discounted means stay inside the observation hull.
        #[test]
        fn discounted_mean_in_hull(
            obs in proptest::collection::vec(0.0f64..=1.0, 1..100),
            gamma in 0.5f64..1.0,
        ) {
            let mut e = DiscountedEstimator::new(1, gamma);
            e.update(SellerId(0), &obs);
            let m = e.mean(SellerId(0));
            prop_assert!((0.0..=1.0).contains(&m));
        }
    }
}
