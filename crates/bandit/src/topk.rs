//! Deterministic top-K selection by score.
//!
//! Step 7 of Algorithm 1 sorts sellers by UCB value and greedily takes the
//! top `K`. Ties are broken by the lower seller id so that runs are
//! reproducible regardless of the underlying sort's stability.

use cdt_types::SellerId;

/// Returns the `k` seller ids with the largest scores, ordered best-first.
///
/// `NaN` scores are treated as `−∞` (never selected unless unavoidable);
/// `+∞` scores (unexplored sellers under UCB) sort first. Ties break toward
/// the smaller id.
///
/// Cost is `O(M log M)`; for the paper's scales (`M ≤ 300`) a full sort is
/// both simplest and fastest in practice (see the `topk` bench).
///
/// # Panics
/// Panics if `k > scores.len()`.
#[must_use]
pub fn top_k_by_score(scores: &[f64], k: usize) -> Vec<SellerId> {
    assert!(
        k <= scores.len(),
        "cannot select top {k} of {} sellers",
        scores.len()
    );
    let mut ids: Vec<usize> = (0..scores.len()).collect();
    ids.sort_unstable_by(|&x, &y| {
        let sx = normalize(scores[x]);
        let sy = normalize(scores[y]);
        sy.partial_cmp(&sx)
            .expect("normalized scores are comparable")
            .then(x.cmp(&y))
    });
    ids.truncate(k);
    ids.into_iter().map(SellerId).collect()
}

fn normalize(score: f64) -> f64 {
    if score.is_nan() {
        f64::NEG_INFINITY
    } else {
        score
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn selects_largest_scores_in_order() {
        let scores = [0.1, 0.9, 0.5, 0.7];
        assert_eq!(
            top_k_by_score(&scores, 3),
            vec![SellerId(1), SellerId(3), SellerId(2)]
        );
    }

    #[test]
    fn ties_break_toward_smaller_id() {
        let scores = [0.5, 0.5, 0.5];
        assert_eq!(top_k_by_score(&scores, 2), vec![SellerId(0), SellerId(1)]);
    }

    #[test]
    fn infinite_scores_sort_first() {
        let scores = [0.9, f64::INFINITY, 0.8];
        assert_eq!(top_k_by_score(&scores, 2), vec![SellerId(1), SellerId(0)]);
    }

    #[test]
    fn nan_scores_sort_last() {
        let scores = [f64::NAN, 0.1, 0.2];
        assert_eq!(top_k_by_score(&scores, 2), vec![SellerId(2), SellerId(1)]);
        // NaN is only picked when k forces it.
        assert_eq!(top_k_by_score(&scores, 3)[2], SellerId(0));
    }

    #[test]
    fn k_equals_m_returns_everyone() {
        let scores = [0.3, 0.1, 0.2];
        let all = top_k_by_score(&scores, 3);
        assert_eq!(all.len(), 3);
        assert_eq!(all[0], SellerId(0));
    }

    #[test]
    fn k_zero_returns_empty() {
        assert!(top_k_by_score(&[0.1, 0.2], 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "cannot select top")]
    fn k_beyond_m_panics() {
        let _ = top_k_by_score(&[0.1], 2);
    }

    proptest! {
        /// Every selected score dominates every unselected score.
        #[test]
        fn selected_dominate_unselected(
            scores in proptest::collection::vec(0.0f64..1.0, 1..40),
            k_frac in 0.0f64..1.0,
        ) {
            let k = ((scores.len() as f64) * k_frac) as usize;
            let picked = top_k_by_score(&scores, k);
            let picked_set: std::collections::HashSet<usize> =
                picked.iter().map(|s| s.index()).collect();
            let min_picked = picked
                .iter()
                .map(|s| scores[s.index()])
                .fold(f64::INFINITY, f64::min);
            for (i, &s) in scores.iter().enumerate() {
                if !picked_set.contains(&i) {
                    prop_assert!(s <= min_picked + 1e-15);
                }
            }
        }

        /// The result has no duplicates and exactly k entries.
        #[test]
        fn result_is_a_k_subset(
            scores in proptest::collection::vec(0.0f64..1.0, 1..40),
        ) {
            let k = scores.len() / 2;
            let picked = top_k_by_score(&scores, k);
            let set: std::collections::HashSet<_> = picked.iter().collect();
            prop_assert_eq!(picked.len(), k);
            prop_assert_eq!(set.len(), k);
        }
    }
}
