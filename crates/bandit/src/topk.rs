//! Deterministic top-K selection by score.
//!
//! Step 7 of Algorithm 1 sorts sellers by UCB value and greedily takes the
//! top `K`. Ties are broken by the lower seller id so that runs are
//! reproducible regardless of the underlying sort's stability.

use cdt_types::SellerId;

/// Returns the `k` seller ids with the largest scores, ordered best-first.
///
/// `NaN` scores are treated as `−∞` (never selected unless unavoidable);
/// `+∞` scores (unexplored sellers under UCB) sort first. Ties break toward
/// the smaller id.
///
/// Cost is `O(M log M)`; for the paper's scales (`M ≤ 300`) a full sort is
/// both simplest and fastest in practice (see the `topk` bench).
///
/// # Panics
/// Panics if `k > scores.len()`.
#[must_use]
pub fn top_k_by_score(scores: &[f64], k: usize) -> Vec<SellerId> {
    assert!(
        k <= scores.len(),
        "cannot select top {k} of {} sellers",
        scores.len()
    );
    let mut ids: Vec<usize> = (0..scores.len()).collect();
    ids.sort_unstable_by(|&x, &y| rank(scores, x, y));
    ids.truncate(k);
    ids.into_iter().map(SellerId).collect()
}

/// Allocation-free top-K: writes the `k` best seller ids into `out`,
/// reusing `scratch` as the index buffer.
///
/// Produces *exactly* the same selection, in the same order, as
/// [`top_k_by_score`] (property-tested below, including NaN/±∞ scores),
/// but via `select_nth_unstable_by` partial selection: `O(M + K log K)`
/// instead of the full `O(M log M)` sort. At the paper's defaults
/// (`M = 300`, `K = 10`) this runs every one of the `10⁵` rounds, so the
/// round hot path uses this variant with cached buffers.
///
/// # Panics
/// Panics if `k > scores.len()`.
pub fn top_k_by_score_into(
    scores: &[f64],
    k: usize,
    scratch: &mut Vec<usize>,
    out: &mut Vec<SellerId>,
) {
    assert!(
        k <= scores.len(),
        "cannot select top {k} of {} sellers",
        scores.len()
    );
    out.clear();
    if k == 0 {
        return;
    }
    scratch.clear();
    scratch.extend(0..scores.len());
    if k < scratch.len() {
        scratch.select_nth_unstable_by(k - 1, |&x, &y| rank(scores, x, y));
    }
    scratch[..k].sort_unstable_by(|&x, &y| rank(scores, x, y));
    out.extend(scratch[..k].iter().map(|&i| SellerId(i)));
}

/// The selection order: larger (normalized) score first, ties toward the
/// smaller id. A strict total order, so partial selection and full sorting
/// agree on the top-K exactly.
fn rank(scores: &[f64], x: usize, y: usize) -> std::cmp::Ordering {
    let sx = normalize(scores[x]);
    let sy = normalize(scores[y]);
    sy.partial_cmp(&sx)
        .expect("normalized scores are comparable")
        .then(x.cmp(&y))
}

fn normalize(score: f64) -> f64 {
    if score.is_nan() {
        f64::NEG_INFINITY
    } else {
        score
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn selects_largest_scores_in_order() {
        let scores = [0.1, 0.9, 0.5, 0.7];
        assert_eq!(
            top_k_by_score(&scores, 3),
            vec![SellerId(1), SellerId(3), SellerId(2)]
        );
    }

    #[test]
    fn ties_break_toward_smaller_id() {
        let scores = [0.5, 0.5, 0.5];
        assert_eq!(top_k_by_score(&scores, 2), vec![SellerId(0), SellerId(1)]);
    }

    #[test]
    fn infinite_scores_sort_first() {
        let scores = [0.9, f64::INFINITY, 0.8];
        assert_eq!(top_k_by_score(&scores, 2), vec![SellerId(1), SellerId(0)]);
    }

    #[test]
    fn nan_scores_sort_last() {
        let scores = [f64::NAN, 0.1, 0.2];
        assert_eq!(top_k_by_score(&scores, 2), vec![SellerId(2), SellerId(1)]);
        // NaN is only picked when k forces it.
        assert_eq!(top_k_by_score(&scores, 3)[2], SellerId(0));
    }

    #[test]
    fn k_equals_m_returns_everyone() {
        let scores = [0.3, 0.1, 0.2];
        let all = top_k_by_score(&scores, 3);
        assert_eq!(all.len(), 3);
        assert_eq!(all[0], SellerId(0));
    }

    #[test]
    fn k_zero_returns_empty() {
        assert!(top_k_by_score(&[0.1, 0.2], 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "cannot select top")]
    fn k_beyond_m_panics() {
        let _ = top_k_by_score(&[0.1], 2);
    }

    proptest! {
        /// Every selected score dominates every unselected score.
        #[test]
        fn selected_dominate_unselected(
            scores in proptest::collection::vec(0.0f64..1.0, 1..40),
            k_frac in 0.0f64..1.0,
        ) {
            let k = ((scores.len() as f64) * k_frac) as usize;
            let picked = top_k_by_score(&scores, k);
            let picked_set: std::collections::HashSet<usize> =
                picked.iter().map(|s| s.index()).collect();
            let min_picked = picked
                .iter()
                .map(|s| scores[s.index()])
                .fold(f64::INFINITY, f64::min);
            for (i, &s) in scores.iter().enumerate() {
                if !picked_set.contains(&i) {
                    prop_assert!(s <= min_picked + 1e-15);
                }
            }
        }

        /// The result has no duplicates and exactly k entries.
        #[test]
        fn result_is_a_k_subset(
            scores in proptest::collection::vec(0.0f64..1.0, 1..40),
        ) {
            let k = scores.len() / 2;
            let picked = top_k_by_score(&scores, k);
            let set: std::collections::HashSet<_> = picked.iter().collect();
            prop_assert_eq!(picked.len(), k);
            prop_assert_eq!(set.len(), k);
        }

        /// Partial-select edge: `k == scores.len()` (the select_nth pivot
        /// step is skipped entirely; only the final sort runs).
        #[test]
        fn into_variant_matches_sort_based_at_k_equals_len(
            scores in proptest::collection::vec(-1.0f64..1.0, 1..40),
        ) {
            let k = scores.len();
            let reference = top_k_by_score(&scores, k);
            let mut scratch = Vec::new();
            let mut out = Vec::new();
            top_k_by_score_into(&scores, k, &mut scratch, &mut out);
            prop_assert_eq!(out, reference);
        }

        /// Partial-select edge: all scores equal, so *every* comparison
        /// falls through to the id tie-break and the pivot is ambiguous
        /// score-wise.
        #[test]
        fn into_variant_matches_sort_based_on_all_equal_scores(
            score in -1.0f64..1.0,
            len in 1usize..40,
            k_frac in 0.0f64..=1.0,
        ) {
            let scores = vec![score; len];
            let k = ((len as f64) * k_frac) as usize;
            let reference = top_k_by_score(&scores, k);
            prop_assert_eq!(
                &reference,
                &(0..k).map(SellerId).collect::<Vec<_>>(),
                "equal scores must break ties toward smaller ids"
            );
            let mut scratch = Vec::new();
            let mut out = Vec::new();
            top_k_by_score_into(&scores, k, &mut scratch, &mut out);
            prop_assert_eq!(out, reference);
        }

        /// Partial-select edge: a block of duplicated scores straddling the
        /// pivot position, so select_nth must split equal-score elements by
        /// the id tie-break alone.
        #[test]
        fn into_variant_matches_sort_based_with_duplicates_straddling_pivot(
            dup in -1.0f64..1.0,
            dup_count in 2usize..20,
            others in proptest::collection::vec(-1.0f64..1.0, 0..20),
            seed in proptest::num::u64::ANY,
        ) {
            // Interleave the duplicate block deterministically among the
            // distinct scores, then pick k inside the duplicate run.
            let mut scores: Vec<f64> = others.clone();
            let mut state = seed;
            for _ in 0..dup_count {
                // SplitMix64-style index scrambling; no RNG dependency.
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                let at = (z >> 33) as usize % (scores.len() + 1);
                scores.insert(at, dup);
            }
            // Ranks of the duplicate entries in the full order; choose k so
            // the cut lands strictly inside the duplicate run whenever the
            // run spans more than one rank.
            let order = top_k_by_score(&scores, scores.len());
            let first_dup_rank = order
                .iter()
                .position(|id| scores[id.index()] == dup)
                .expect("duplicate block is present");
            let k = (first_dup_rank + dup_count / 2).min(scores.len());
            let reference = top_k_by_score(&scores, k);
            let mut scratch = Vec::new();
            let mut out = Vec::new();
            top_k_by_score_into(&scores, k, &mut scratch, &mut out);
            prop_assert_eq!(out, reference);
        }

        /// The partial-selection variant matches the sort-based reference
        /// exactly — same ids, same order — for every k, on score vectors
        /// that may contain NaN, ±∞, and repeated values.
        #[test]
        fn into_variant_matches_sort_based(
            scores in proptest::collection::vec(
                prop_oneof![
                    5 => -1.0f64..1.0,
                    1 => proptest::sample::select(vec![
                        f64::NAN,
                        f64::INFINITY,
                        f64::NEG_INFINITY,
                        0.0,
                        0.5,
                    ]),
                ],
                1..50,
            ),
            k_frac in 0.0f64..=1.0,
        ) {
            let k = ((scores.len() as f64) * k_frac) as usize;
            let reference = top_k_by_score(&scores, k);
            let mut scratch = Vec::new();
            let mut out = Vec::new();
            top_k_by_score_into(&scores, k, &mut scratch, &mut out);
            prop_assert_eq!(out, reference);
        }
    }

    #[test]
    fn into_variant_reuses_buffers() {
        let mut scratch = Vec::new();
        let mut out = Vec::new();
        top_k_by_score_into(&[0.1, 0.9, 0.5, 0.7], 2, &mut scratch, &mut out);
        assert_eq!(out, vec![SellerId(1), SellerId(3)]);
        // A second call on smaller input must fully overwrite stale state.
        top_k_by_score_into(&[0.3, 0.1], 1, &mut scratch, &mut out);
        assert_eq!(out, vec![SellerId(0)]);
        let ptr_before = out.as_ptr();
        top_k_by_score_into(&[0.2, 0.4], 1, &mut scratch, &mut out);
        assert_eq!(out, vec![SellerId(1)]);
        assert_eq!(ptr_before, out.as_ptr(), "no reallocation on reuse");
    }

    #[test]
    fn into_variant_k_zero_and_k_full() {
        let mut scratch = Vec::new();
        let mut out = vec![SellerId(9)];
        top_k_by_score_into(&[0.1, 0.2], 0, &mut scratch, &mut out);
        assert!(out.is_empty());
        top_k_by_score_into(&[0.3, 0.1, 0.2], 3, &mut scratch, &mut out);
        assert_eq!(out, top_k_by_score(&[0.3, 0.1, 0.2], 3));
    }
}
