//! The platform's online quality learner (Eqs. 17–18).
//!
//! For each seller the estimator tracks the total number of learned
//! observations `n_i^t` and the running sample mean `q̄_i^t`:
//!
//! ```text
//! n_i^t = n_i^{t−1} + L            if selected (one observation per PoI)
//! q̄_i^t = (q̄_i^{t−1} n_i^{t−1} + Σ_l q_{i,l}^t) / (n_i^{t−1} + L)
//! ```

use cdt_quality::ObservationMatrix;
use cdt_types::SellerId;
use serde::{Deserialize, Serialize};

/// Per-seller sample-mean quality estimates with observation counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QualityEstimator {
    counts: Vec<u64>,
    means: Vec<f64>,
    total_count: u64,
}

impl QualityEstimator {
    /// A fresh estimator over `m` sellers: all counters zero, all means
    /// zero (no prior knowledge — Def. 3's "unknown sellers").
    #[must_use]
    pub fn new(m: usize) -> Self {
        Self {
            counts: vec![0; m],
            means: vec![0.0; m],
            total_count: 0,
        }
    }

    /// Number of sellers `M`.
    #[must_use]
    pub fn num_sellers(&self) -> usize {
        self.counts.len()
    }

    /// `n_i^t`: how many observations of seller `i` have been learned.
    #[must_use]
    pub fn count(&self, id: SellerId) -> u64 {
        self.counts[id.index()]
    }

    /// `Σ_j n_j^t`: total observations across all sellers (the logarithm's
    /// argument in Eq. 19).
    #[must_use]
    pub fn total_count(&self) -> u64 {
        self.total_count
    }

    /// `q̄_i^t`: the current sample-mean quality of seller `i`
    /// (0 before the first observation).
    #[must_use]
    pub fn mean(&self, id: SellerId) -> f64 {
        self.means[id.index()]
    }

    /// All sample means, indexed by seller.
    #[must_use]
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// All observation counts `n_i^t`, indexed by seller (parallel to
    /// [`QualityEstimator::means`]).
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// `true` once seller `i` has been observed at least once.
    #[must_use]
    pub fn is_explored(&self, id: SellerId) -> bool {
        self.counts[id.index()] > 0
    }

    /// Folds one seller's `L` per-PoI observations into the estimate
    /// (Eqs. 17–18 for `χ_i^t = 1`).
    ///
    /// # Panics
    /// Panics if the observations sum to a non-finite value (a NaN or ±∞
    /// observation would silently poison the running mean forever), and
    /// in debug builds if an observation leaves `[0, 1]` — the quality
    /// domain of Def. 3. Callers sit between this estimator and the
    /// [`cdt_quality`] samplers, which guarantee the domain.
    pub fn update(&mut self, id: SellerId, observations: &[f64]) {
        // Non-finite values skip the domain check: they reach the hard
        // non-finite-sum assert below in every build profile.
        debug_assert!(
            observations
                .iter()
                .filter(|q| q.is_finite())
                .all(|q| (0.0..=1.0).contains(q)),
            "quality observations must lie in [0, 1]"
        );
        if observations.is_empty() {
            return;
        }
        let i = id.index();
        let old_n = self.counts[i] as f64;
        let l = observations.len() as f64;
        let sum = cdt_types::lanes::configured_sum(observations);
        assert!(
            sum.is_finite(),
            "non-finite observation sum for seller {i}: observations must be finite"
        );
        self.means[i] = (self.means[i] * old_n + sum) / (old_n + l);
        self.counts[i] += observations.len() as u64;
        self.total_count += observations.len() as u64;
    }

    /// Folds a whole round's observation matrix into the estimates.
    ///
    /// One flat sweep over the row-major buffer: each row's sum and mean
    /// update use exactly the per-row expressions of
    /// [`QualityEstimator::update`] (bit-identical), but the per-row slicing
    /// and the `total_count` bump are hoisted out of the loop.
    pub fn update_round(&mut self, observations: &ObservationMatrix) {
        update_round_columns(
            &mut self.counts,
            &mut self.means,
            &mut self.total_count,
            observations,
        );
    }
}

/// Folds one round's observation matrix into raw estimator columns
/// (`counts`/`means` parallel arrays plus the global `total_count`).
///
/// This is the single kernel behind both [`QualityEstimator::update_round`]
/// and the batched per-lane estimator sweep
/// ([`crate::batch::BatchCmabUcb`]): one shared expression tree means the
/// two paths cannot drift apart bit-wise.
///
/// The per-row `Σ_l q_{i,l}` reduction follows the process lane
/// configuration: sequential (bit-identical to [`QualityEstimator::update`])
/// by default, reassociated at the configured lane width under fast-math
/// (see [`cdt_types::lanes`]).
///
/// # Panics
/// Panics if any row sums to a non-finite value — a NaN/±∞ observation
/// would otherwise poison the running mean for the rest of the run.
pub fn update_round_columns(
    counts: &mut [u64],
    means: &mut [f64],
    total_count: &mut u64,
    observations: &ObservationMatrix,
) {
    update_round_columns_with(
        counts,
        means,
        total_count,
        observations,
        cdt_types::lanes::lane_width(),
        cdt_types::lanes::fast_math(),
    );
}

/// As [`update_round_columns`], at an explicit `(width, fast_math)`
/// configuration — the testable kernel that never reads process globals.
///
/// With `fast_math = false` the row sums are strictly sequential and the
/// result is bit-identical at every `width`; with `fast_math = true` the
/// row sums reassociate at `width` lanes (deterministic per width, bounded
/// divergence — see [`cdt_types::lanes`]).
pub fn update_round_columns_with(
    counts: &mut [u64],
    means: &mut [f64],
    total_count: &mut u64,
    observations: &ObservationMatrix,
    width: usize,
    fast_math: bool,
) {
    let sellers = observations.sellers();
    let l = observations.num_pois();
    if l == 0 {
        return;
    }
    // Non-finite values skip the domain check: they reach the hard
    // non-finite-sum assert in the loop below in every build profile.
    debug_assert!(
        observations
            .values()
            .iter()
            .filter(|q| q.is_finite())
            .all(|q| (0.0..=1.0).contains(q)),
        "quality observations must lie in [0, 1]"
    );
    let l_f = l as f64;
    for (id, row) in sellers.iter().zip(observations.values().chunks_exact(l)) {
        let i = id.index();
        let old_n = counts[i] as f64;
        let sum = if fast_math {
            cdt_types::lanes::sum_reassociated_width(row, width)
        } else {
            cdt_types::lanes::sum_sequential(row)
        };
        // One finiteness check per row (not per observation): any NaN/±∞
        // observation propagates into its row sum, so this rejects every
        // poisoned input at O(rows) cost.
        assert!(
            sum.is_finite(),
            "non-finite observation sum for seller {i}: observations must be finite"
        );
        means[i] = (means[i] * old_n + sum) / (old_n + l_f);
        counts[i] += l as u64;
    }
    *total_count += (sellers.len() * l) as u64;
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fresh_estimator_knows_nothing() {
        let e = QualityEstimator::new(3);
        assert_eq!(e.num_sellers(), 3);
        assert_eq!(e.total_count(), 0);
        for i in 0..3 {
            assert_eq!(e.count(SellerId(i)), 0);
            assert_eq!(e.mean(SellerId(i)), 0.0);
            assert!(!e.is_explored(SellerId(i)));
        }
    }

    #[test]
    fn single_update_sets_mean_to_average() {
        let mut e = QualityEstimator::new(2);
        e.update(SellerId(0), &[0.8, 0.6, 0.7, 0.5]);
        assert_eq!(e.count(SellerId(0)), 4);
        assert!((e.mean(SellerId(0)) - 0.65).abs() < 1e-12);
        assert_eq!(e.count(SellerId(1)), 0);
        assert_eq!(e.total_count(), 4);
    }

    #[test]
    fn paper_example_round1_means() {
        // Sec. III-D: seller 1 observes (0.804, 0.661, 0.723, 0.389) over
        // L = 4 PoIs; the paper reports q̄₁¹ = 0.644 (3 d.p.).
        let mut e = QualityEstimator::new(1);
        e.update(SellerId(0), &[0.804, 0.661, 0.723, 0.389]);
        assert!((e.mean(SellerId(0)) - 0.64425).abs() < 1e-9);
    }

    #[test]
    fn incremental_update_equals_batch_mean() {
        let mut e = QualityEstimator::new(1);
        e.update(SellerId(0), &[0.2, 0.4]);
        e.update(SellerId(0), &[0.9]);
        e.update(SellerId(0), &[0.1, 0.3, 0.5]);
        let batch = (0.2 + 0.4 + 0.9 + 0.1 + 0.3 + 0.5) / 6.0;
        assert!((e.mean(SellerId(0)) - batch).abs() < 1e-12);
        assert_eq!(e.count(SellerId(0)), 6);
    }

    #[test]
    fn empty_observation_is_a_no_op() {
        let mut e = QualityEstimator::new(1);
        e.update(SellerId(0), &[0.5]);
        let before = e.clone();
        e.update(SellerId(0), &[]);
        assert_eq!(e, before);
    }

    #[test]
    fn update_round_folds_all_rows() {
        let mut e = QualityEstimator::new(3);
        let m = ObservationMatrix::new(
            vec![SellerId(0), SellerId(2)],
            vec![vec![0.5, 0.7], vec![0.2, 0.4]],
        );
        e.update_round(&m);
        assert!((e.mean(SellerId(0)) - 0.6).abs() < 1e-12);
        assert!((e.mean(SellerId(2)) - 0.3).abs() < 1e-12);
        assert_eq!(e.count(SellerId(1)), 0);
        assert_eq!(e.total_count(), 4);
    }

    #[test]
    fn eq17_18_counters_increment_by_l_per_round() {
        // Eq. 17–18 semantics: a *selected* seller's counter grows by
        // exactly L (one observation per PoI) per round; unselected
        // sellers' counters and means are untouched; the global total grows
        // by K·L. Pins the learning rate against kernel rewrites.
        let l = 4;
        let mut e = QualityEstimator::new(5);
        for round in 1..=3u64 {
            let m =
                ObservationMatrix::from_flat(vec![SellerId(1), SellerId(3)], l, vec![0.5; 2 * l]);
            e.update_round(&m);
            assert_eq!(e.count(SellerId(1)), round * l as u64);
            assert_eq!(e.count(SellerId(3)), round * l as u64);
            assert_eq!(e.total_count(), 2 * round * l as u64);
        }
        for unselected in [0, 2, 4] {
            assert_eq!(e.count(SellerId(unselected)), 0);
            assert_eq!(e.mean(SellerId(unselected)), 0.0);
        }
        assert_eq!(e.counts(), &[0, 12, 0, 12, 0]);
    }

    #[test]
    fn update_round_matches_per_row_updates() {
        // The flat sweep must be bit-identical to folding row by row.
        let m = ObservationMatrix::new(
            vec![SellerId(0), SellerId(2), SellerId(1)],
            vec![
                vec![0.804, 0.661, 0.723],
                vec![0.1, 0.9, 0.3],
                vec![0.25, 0.5, 0.75],
            ],
        );
        let mut flat = QualityEstimator::new(3);
        flat.update_round(&m);
        let mut per_row = QualityEstimator::new(3);
        for (id, row) in m.iter() {
            per_row.update(id, row);
        }
        assert_eq!(flat, per_row);
    }

    #[test]
    #[should_panic(expected = "non-finite observation sum")]
    fn update_rejects_nan_observations() {
        let mut e = QualityEstimator::new(1);
        e.update(SellerId(0), &[0.5, f64::NAN, 0.5]);
    }

    #[test]
    #[should_panic(expected = "non-finite observation sum")]
    fn update_round_rejects_infinite_observations() {
        let mut e = QualityEstimator::new(2);
        let m = ObservationMatrix::from_flat(
            vec![SellerId(0), SellerId(1)],
            2,
            vec![0.5, 0.5, f64::INFINITY, 0.5],
        );
        e.update_round(&m);
    }

    #[test]
    fn deterministic_round_update_is_width_invariant() {
        // fast_math = false ⇒ the row sums stay sequential, so every lane
        // width must produce the same bits.
        let m = ObservationMatrix::from_flat(
            vec![SellerId(0), SellerId(2), SellerId(1)],
            10,
            (0..30).map(|i| (i as f64) / 31.0).collect(),
        );
        let run = |width: usize| {
            let mut counts = vec![3u64, 0, 5];
            let mut means = vec![0.25, 0.0, 0.75];
            let mut total = 8u64;
            update_round_columns_with(&mut counts, &mut means, &mut total, &m, width, false);
            (
                counts,
                means.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                total,
            )
        };
        let reference = run(1);
        for w in [2usize, 4, 8] {
            assert_eq!(run(w), reference, "width {w}");
        }
    }

    #[test]
    fn fast_math_round_update_diverges_within_bound() {
        // Rows longer than the lane width reassociate under fast-math:
        // the means may drift from the sequential reference, but only
        // within the reassociation bound, and deterministically per width.
        let l = 10;
        let m = ObservationMatrix::from_flat(
            vec![SellerId(0), SellerId(1)],
            l,
            (0..2 * l).map(|i| 1.0 / (1.0 + i as f64)).collect(),
        );
        let run = |width: usize, fast: bool| {
            let mut counts = vec![0u64; 2];
            let mut means = vec![0.0; 2];
            let mut total = 0u64;
            update_round_columns_with(&mut counts, &mut means, &mut total, &m, width, fast);
            means
        };
        let reference = run(1, false);
        for w in [4usize, 8] {
            let fast = run(w, true);
            let again = run(w, true);
            assert_eq!(
                fast.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                again.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "fast-math must be deterministic at width {w}"
            );
            for (i, (f, r)) in fast.iter().zip(&reference).enumerate() {
                let bound = (l as f64) * f64::EPSILON * (l as f64);
                assert!((f - r).abs() <= bound, "width {w} row {i}: {f} vs {r}");
            }
        }
    }

    proptest! {
        /// The running mean always stays inside the convex hull of the
        /// observations — in particular inside [0, 1].
        #[test]
        fn mean_stays_in_unit_interval(obs in proptest::collection::vec(0.0f64..=1.0, 1..50)) {
            let mut e = QualityEstimator::new(1);
            for chunk in obs.chunks(7) {
                e.update(SellerId(0), chunk);
            }
            let m = e.mean(SellerId(0));
            prop_assert!((0.0..=1.0).contains(&m));
            prop_assert_eq!(e.count(SellerId(0)), obs.len() as u64);
        }

        /// Chunked incremental updates agree with the one-shot batch mean.
        #[test]
        fn incremental_matches_batch(
            obs in proptest::collection::vec(0.0f64..=1.0, 1..80),
            chunk in 1usize..10,
        ) {
            let mut e = QualityEstimator::new(1);
            for c in obs.chunks(chunk) {
                e.update(SellerId(0), c);
            }
            let batch = obs.iter().sum::<f64>() / obs.len() as f64;
            prop_assert!((e.mean(SellerId(0)) - batch).abs() < 1e-9);
        }
    }
}
