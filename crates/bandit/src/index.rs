//! The extended UCB index of Eq. 19.
//!
//! `q̂_i^t = q̄_i^t + ε_i^t`, with
//! `ε_i^t = sqrt( w · ln(Σ_j n_j^t) / n_i^t )`.
//!
//! The paper fixes the exploration weight `w = K + 1`; [`UcbConfig`]
//! exposes it so the `ucb_width_ablation` bench can sweep it (DESIGN.md §5).
//! Unexplored sellers get an infinite index, guaranteeing every seller is
//! observed before any exploitation happens (the initial round of
//! Algorithm 1 selects everyone, so in CMAB-HS proper this only matters for
//! policies without an initial full sweep).

use crate::estimator::QualityEstimator;
use cdt_types::SellerId;
use serde::{Deserialize, Serialize};

/// Configuration of the UCB exploration term.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UcbConfig {
    /// The weight `w` inside the square root. The paper's choice for a
    /// `K`-armed combinatorial pull is `w = K + 1`.
    pub exploration_weight: f64,
}

impl UcbConfig {
    /// The paper's configuration for selection size `K`: `w = K + 1`.
    #[must_use]
    pub fn paper(k: usize) -> Self {
        Self {
            exploration_weight: (k + 1) as f64,
        }
    }

    /// A custom exploration weight (ablation studies).
    ///
    /// # Panics
    /// Panics unless `w > 0` and finite.
    #[must_use]
    pub fn with_weight(w: f64) -> Self {
        assert!(w.is_finite() && w > 0.0, "exploration weight must be > 0");
        Self {
            exploration_weight: w,
        }
    }

    /// The confidence width `ε_i^t` for one seller.
    ///
    /// Returns `+∞` when the seller has never been observed, and 0 when no
    /// observation exists anywhere yet (`ln` of 0/1 would be degenerate).
    #[must_use]
    pub fn confidence_width(&self, count: u64, total_count: u64) -> f64 {
        if count == 0 {
            return f64::INFINITY;
        }
        if total_count <= 1 {
            return 0.0;
        }
        (self.exploration_weight * (total_count as f64).ln() / count as f64).sqrt()
    }

    /// The UCB index `q̂_i^t` for one seller.
    #[must_use]
    pub fn index(&self, mean: f64, count: u64, total_count: u64) -> f64 {
        mean + self.confidence_width(count, total_count)
    }
}

/// Computes the UCB index of every seller from the estimator state.
#[must_use]
pub fn ucb_indices(estimator: &QualityEstimator, config: &UcbConfig) -> Vec<f64> {
    let mut out = Vec::with_capacity(estimator.num_sellers());
    ucb_indices_into(estimator, config, &mut out);
    out
}

/// As [`ucb_indices`], but writes into `out`, reusing its capacity so the
/// per-round index computation does not allocate after the first call.
pub fn ucb_indices_into(estimator: &QualityEstimator, config: &UcbConfig, out: &mut Vec<f64>) {
    ucb_indices_from_columns_into(
        estimator.counts(),
        estimator.means(),
        estimator.total_count(),
        config,
        out,
    );
}

/// The UCB-index sweep over raw estimator columns (`counts`/`means`
/// parallel arrays plus the global `total`).
///
/// This is the single kernel behind both the serial path
/// ([`ucb_indices_into`]) and the batched per-lane sweep
/// ([`crate::batch::BatchCmabUcb`]): one shared expression tree means the
/// two paths cannot drift apart bit-wise.
pub fn ucb_indices_from_columns_into(
    counts: &[u64],
    means: &[f64],
    total: u64,
    config: &UcbConfig,
    out: &mut Vec<f64>,
) {
    ucb_indices_from_columns_width_into(
        counts,
        means,
        total,
        config,
        cdt_types::lanes::lane_width(),
        out,
    );
}

/// As [`ucb_indices_from_columns_into`], at an explicit lane `width`.
///
/// The fill is **elementwise** — one output per `(count, mean)` pair with
/// an unchanged expression tree — so every width produces bit-identical
/// results; the width only shapes the loop for the autovectorizer. This
/// variant exists so tests can pin that identity without touching the
/// process-wide lane configuration.
pub fn ucb_indices_from_columns_width_into(
    counts: &[u64],
    means: &[f64],
    total: u64,
    config: &UcbConfig,
    width: usize,
    out: &mut Vec<f64>,
) {
    out.clear();
    if total <= 1 {
        // Degenerate start: every explored arm has zero width.
        out.extend(
            counts
                .iter()
                .zip(means)
                .map(|(&n, &mean)| if n == 0 { f64::INFINITY } else { mean + 0.0 }),
        );
        return;
    }
    // `ln(Σn)` is identical for every arm — hoist `w · ln(Σn)` out of the
    // per-arm loop. `(w_ln_total / n).sqrt()` keeps the exact expression
    // tree of [`UcbConfig::confidence_width`] (`(w * ln) / n`), so the
    // indices are bit-identical to the unhoisted path.
    let w_ln_total = config.exploration_weight * (total as f64).ln();
    out.resize(counts.len(), 0.0);
    match width {
        2 => ucb_lane_fill::<2>(counts, means, w_ln_total, out),
        4 => ucb_lane_fill::<4>(counts, means, w_ln_total, out),
        8 => ucb_lane_fill::<8>(counts, means, w_ln_total, out),
        _ => ucb_lane_fill::<1>(counts, means, w_ln_total, out),
    }
}

/// The branchless UCB fill at compile-time width `W`: `W` outputs per
/// chunk iteration, each `mean + sqrt(w_ln_total / n)`.
///
/// The scalar path's `n == 0 → +∞` branch is *absorbed into the float
/// expression*: with `total ≥ 2` and a positive exploration weight,
/// `w_ln_total > 0`, so `w_ln_total / 0.0 = +∞`, `sqrt(+∞) = +∞`, and
/// `mean + ∞ = +∞` for any finite mean — the exact bits the branch
/// produced. Dropping the branch is what lets the loop vectorize.
#[allow(clippy::needless_range_loop)] // `0..W` indexing keeps the W-lane shape visible to the autovectorizer
fn ucb_lane_fill<const W: usize>(counts: &[u64], means: &[f64], w_ln_total: f64, out: &mut [f64]) {
    debug_assert!(w_ln_total > 0.0, "caller guarantees total >= 2 and w > 0");
    debug_assert_eq!(counts.len(), means.len());
    debug_assert_eq!(counts.len(), out.len());
    let mut c_chunks = counts.chunks_exact(W);
    let mut m_chunks = means.chunks_exact(W);
    let o_chunks = out.chunks_exact_mut(W);
    for ((c, m), o) in (&mut c_chunks).zip(&mut m_chunks).zip(o_chunks) {
        for j in 0..W {
            o[j] = m[j] + (w_ln_total / c[j] as f64).sqrt();
        }
    }
    let done = counts.len() - c_chunks.remainder().len();
    for i in done..counts.len() {
        out[i] = means[i] + (w_ln_total / counts[i] as f64).sqrt();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_weight_is_k_plus_one() {
        assert_eq!(UcbConfig::paper(10).exploration_weight, 11.0);
    }

    #[test]
    fn unexplored_seller_has_infinite_index() {
        let c = UcbConfig::paper(2);
        assert_eq!(c.confidence_width(0, 100), f64::INFINITY);
        assert_eq!(c.index(0.0, 0, 100), f64::INFINITY);
    }

    #[test]
    fn width_shrinks_with_own_count() {
        let c = UcbConfig::paper(2);
        let w1 = c.confidence_width(10, 1000);
        let w2 = c.confidence_width(100, 1000);
        assert!(w1 > w2);
    }

    #[test]
    fn width_grows_with_total_count() {
        let c = UcbConfig::paper(2);
        let w1 = c.confidence_width(10, 100);
        let w2 = c.confidence_width(10, 10_000);
        assert!(w2 > w1, "less-selected sellers regain priority over time");
    }

    #[test]
    fn width_matches_formula() {
        let c = UcbConfig::paper(2); // w = 3
        let expected = (3.0 * (1000.0f64).ln() / 50.0).sqrt();
        assert!((c.confidence_width(50, 1000) - expected).abs() < 1e-12);
    }

    #[test]
    fn paper_example_round2_ucb() {
        // Sec. III-D, after round 2 (K = 2, L = 4): n₁ = 8, n₃ = 4,
        // Σn = 20. The paper reports q̂₁² = 1.657 with q̄₁² = 0.597 and
        // q̂₃² = 2.069 with q̄₃² = 0.57 — both match
        // ε = sqrt(3·ln 20 / n) exactly. (The example's *round-1* UCB
        // values 3.258/3.268/3.184 instead correspond to a width of
        // sqrt(11·ln 12 / 4), i.e. the authors' default K = 10 leaked into
        // the K = 2 example; round 2 is the self-consistent reference.)
        let c = UcbConfig::paper(2);
        let q1 = c.index(0.597, 8, 20);
        let q3 = c.index(0.57, 4, 20);
        assert!((q1 - 1.657).abs() < 2e-3, "q̂₁ = {q1}");
        assert!((q3 - 2.069).abs() < 2e-3, "q̂₃ = {q3}");
    }

    #[test]
    fn ucb_indices_cover_all_sellers() {
        let mut e = QualityEstimator::new(3);
        e.update(SellerId(0), &[0.5, 0.5]);
        e.update(SellerId(1), &[0.9, 0.9]);
        let idx = ucb_indices(&e, &UcbConfig::paper(1));
        assert_eq!(idx.len(), 3);
        assert!(idx[1] > idx[0], "better mean, equal count ⇒ larger index");
        assert_eq!(idx[2], f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "exploration weight must be > 0")]
    fn rejects_non_positive_weight() {
        let _ = UcbConfig::with_weight(0.0);
    }

    #[test]
    fn hoisted_indices_are_bit_identical_to_per_arm_index() {
        let mut e = QualityEstimator::new(4);
        e.update(SellerId(0), &[0.5, 0.25]);
        e.update(SellerId(1), &[0.9]);
        e.update(SellerId(2), &[0.1, 0.2, 0.3]);
        let c = UcbConfig::paper(2);
        let idx = ucb_indices(&e, &c);
        for (i, &got) in idx.iter().enumerate() {
            let id = SellerId(i);
            let expect = c.index(e.mean(id), e.count(id), e.total_count());
            assert_eq!(got.to_bits(), expect.to_bits(), "arm {i}");
        }
    }

    #[test]
    fn hoisted_indices_degenerate_total_matches_per_arm_index() {
        // total_count == 1 exercises the zero-width branch.
        let mut e = QualityEstimator::new(2);
        e.update(SellerId(0), &[0.7]);
        let c = UcbConfig::paper(1);
        let idx = ucb_indices(&e, &c);
        assert_eq!(idx[0].to_bits(), c.index(0.7, 1, 1).to_bits());
        assert_eq!(idx[1], f64::INFINITY);
    }

    #[test]
    fn zero_total_width_is_zero_for_explored() {
        // Degenerate but defined: an explored seller when total <= 1.
        let c = UcbConfig::paper(1);
        assert_eq!(c.confidence_width(1, 1), 0.0);
    }

    #[test]
    fn branchless_fill_maps_unexplored_arms_to_infinity() {
        // The W-lane fill replaces the `n == 0` branch with
        // `mean + sqrt(w_ln_total / 0.0)`; pin that it still produces the
        // exact +∞ bits at every width, interleaved with explored arms.
        let counts = [3u64, 0, 7, 0, 0, 1, 12, 0, 5];
        let means = [0.5, 0.0, 0.25, 0.0, 0.0, 0.75, 0.1, 0.0, 0.9];
        let c = UcbConfig::paper(2);
        for w in [1usize, 2, 4, 8] {
            let mut out = Vec::new();
            ucb_indices_from_columns_width_into(&counts, &means, 28, &c, w, &mut out);
            for (i, (&n, &got)) in counts.iter().zip(&out).enumerate() {
                if n == 0 {
                    assert_eq!(got.to_bits(), f64::INFINITY.to_bits(), "width {w} arm {i}");
                } else {
                    assert!(got.is_finite(), "width {w} arm {i}");
                }
            }
        }
    }

    proptest::proptest! {
        /// The UCB fill is elementwise, so every lane width must reproduce
        /// the width-1 (scalar reference) bits exactly — including lengths
        /// that leave ragged tails and arms with `n = 0`.
        #[test]
        fn ucb_fill_is_bit_identical_at_every_lane_width(
            arms in proptest::collection::vec((0u64..50, 0.0f64..=1.0), 1..40),
            extra in 0u64..100,
        ) {
            let counts: Vec<u64> = arms.iter().map(|a| a.0).collect();
            let means: Vec<f64> = arms.iter().map(|a| a.1).collect();
            // `extra` pushes some cases into the degenerate `total <= 1`
            // branch and keeps others well inside the hoisted path.
            let total = counts.iter().sum::<u64>().min(2) * extra + counts.iter().sum::<u64>();
            let c = UcbConfig::paper(3);
            let mut reference = Vec::new();
            ucb_indices_from_columns_width_into(&counts, &means, total, &c, 1, &mut reference);
            let ref_bits: Vec<u64> = reference.iter().map(|x| x.to_bits()).collect();
            for w in [2usize, 4, 8] {
                let mut out = Vec::new();
                ucb_indices_from_columns_width_into(&counts, &means, total, &c, w, &mut out);
                let out_bits: Vec<u64> = out.iter().map(|x| x.to_bits()).collect();
                proptest::prop_assert_eq!(&out_bits, &ref_bits, "width {}", w);
            }
        }
    }
}
