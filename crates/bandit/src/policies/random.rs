//! The uniform-random baseline of the paper's evaluation.

use crate::estimator::QualityEstimator;
use crate::policy::{random_k_subset, random_k_subset_into, SelectionPolicy};
use cdt_quality::ObservationMatrix;
use cdt_types::{Round, SellerId};
use rand::RngCore;

/// Selects a uniform random `K`-subset every round. It still *learns*
/// (the platform observes the data it buys), so its Stackelberg game is
/// played with sample-mean qualities like every other learning policy —
/// only its selection ignores them.
#[derive(Debug, Clone)]
pub struct RandomPolicy {
    estimator: QualityEstimator,
    k: usize,
}

impl RandomPolicy {
    /// Creates a random policy over `m` sellers with selection size `k`.
    #[must_use]
    pub fn new(m: usize, k: usize) -> Self {
        Self {
            estimator: QualityEstimator::new(m),
            k,
        }
    }
}

impl SelectionPolicy for RandomPolicy {
    fn name(&self) -> String {
        "random".to_owned()
    }

    fn select(&mut self, _round: Round, rng: &mut dyn RngCore) -> Vec<SellerId> {
        random_k_subset(self.estimator.num_sellers(), self.k, rng)
    }

    fn select_into(&mut self, _round: Round, rng: &mut dyn RngCore, out: &mut Vec<SellerId>) {
        random_k_subset_into(self.estimator.num_sellers(), self.k, rng, out);
    }

    fn observe(&mut self, _round: Round, observations: &ObservationMatrix) {
        self.estimator.update_round(observations);
    }

    fn game_quality(&self, id: SellerId) -> f64 {
        self.estimator.mean(id)
    }

    fn estimator(&self) -> &QualityEstimator {
        &self.estimator
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn selects_k_distinct_sellers() {
        let mut p = RandomPolicy::new(20, 5);
        let mut rng = StdRng::seed_from_u64(1);
        for t in 0..50 {
            let sel = p.select(Round(t), &mut rng);
            let set: std::collections::HashSet<_> = sel.iter().collect();
            assert_eq!(sel.len(), 5);
            assert_eq!(set.len(), 5);
        }
    }

    #[test]
    fn selection_frequency_is_roughly_uniform() {
        let mut p = RandomPolicy::new(10, 2);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 10];
        let rounds = 20_000;
        for t in 0..rounds {
            for id in p.select(Round(t), &mut rng) {
                counts[id.index()] += 1;
            }
        }
        let expected = rounds as f64 * 2.0 / 10.0;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(
                dev < 0.05,
                "seller {i} selected {c} times (expected ~{expected})"
            );
        }
    }

    #[test]
    fn still_learns_from_observations() {
        let mut p = RandomPolicy::new(2, 1);
        let m = ObservationMatrix::new(vec![SellerId(1)], vec![vec![0.8, 0.6]]);
        p.observe(Round(0), &m);
        assert!((p.game_quality(SellerId(1)) - 0.7).abs() < 1e-12);
    }
}
