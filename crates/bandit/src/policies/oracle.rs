//! The clairvoyant "optimal" baseline: knows every seller's true expected
//! quality in advance and always selects the true top-K (the paper's
//! `optimal` comparison algorithm and the reference policy in the regret
//! definition, Eq. 34).

use crate::estimator::QualityEstimator;
use crate::policy::SelectionPolicy;
use crate::topk::top_k_by_score;
use cdt_quality::ObservationMatrix;
use cdt_types::{Round, SellerId};
use rand::RngCore;

/// Always selects the `K` sellers with the highest *true* expected quality;
/// its Stackelberg game is played with the true qualities as well.
#[derive(Debug, Clone)]
pub struct OraclePolicy {
    true_qualities: Vec<f64>,
    selection: Vec<SellerId>,
    // Maintained for interface parity (and so the oracle's estimator can be
    // inspected in convergence tests), never used for selection.
    estimator: QualityEstimator,
}

impl OraclePolicy {
    /// Creates the oracle from the hidden true qualities.
    ///
    /// # Panics
    /// Panics if `k` exceeds the number of sellers.
    #[must_use]
    pub fn new(true_qualities: Vec<f64>, k: usize) -> Self {
        assert!(k <= true_qualities.len());
        let selection = top_k_by_score(&true_qualities, k);
        let m = true_qualities.len();
        Self {
            true_qualities,
            selection,
            estimator: QualityEstimator::new(m),
        }
    }

    /// The fixed optimal selection `S*` (same every round).
    #[must_use]
    pub fn optimal_selection(&self) -> &[SellerId] {
        &self.selection
    }

    /// Per-round optimal expected revenue contribution *per PoI*:
    /// `Σ_{i∈S*} q_i`.
    #[must_use]
    pub fn optimal_quality_sum(&self) -> f64 {
        self.selection
            .iter()
            .map(|id| self.true_qualities[id.index()])
            .sum()
    }
}

impl SelectionPolicy for OraclePolicy {
    fn name(&self) -> String {
        "optimal".to_owned()
    }

    fn select(&mut self, _round: Round, _rng: &mut dyn RngCore) -> Vec<SellerId> {
        self.selection.clone()
    }

    fn select_into(&mut self, _round: Round, _rng: &mut dyn RngCore, out: &mut Vec<SellerId>) {
        out.clear();
        out.extend_from_slice(&self.selection);
    }

    fn observe(&mut self, _round: Round, observations: &ObservationMatrix) {
        self.estimator.update_round(observations);
    }

    fn game_quality(&self, id: SellerId) -> f64 {
        self.true_qualities[id.index()]
    }

    fn estimator(&self) -> &QualityEstimator {
        &self.estimator
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn selects_true_top_k_every_round() {
        let mut p = OraclePolicy::new(vec![0.3, 0.9, 0.1, 0.7], 2);
        let mut rng = StdRng::seed_from_u64(1);
        for t in 0..5 {
            assert_eq!(p.select(Round(t), &mut rng), vec![SellerId(1), SellerId(3)]);
        }
        assert_eq!(p.optimal_selection().len(), 2);
    }

    #[test]
    fn optimal_quality_sum() {
        let p = OraclePolicy::new(vec![0.3, 0.9, 0.1, 0.7], 2);
        assert!((p.optimal_quality_sum() - 1.6).abs() < 1e-12);
    }

    #[test]
    fn game_quality_is_truth() {
        let p = OraclePolicy::new(vec![0.3, 0.9], 1);
        assert_eq!(p.game_quality(SellerId(0)), 0.3);
        assert_eq!(p.game_quality(SellerId(1)), 0.9);
    }

    #[test]
    fn ties_resolve_deterministically() {
        let p = OraclePolicy::new(vec![0.5, 0.5, 0.5], 2);
        assert_eq!(p.optimal_selection(), &[SellerId(0), SellerId(1)]);
    }
}
