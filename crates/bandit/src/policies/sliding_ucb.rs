//! Sliding-window UCB (SW-UCB, Garivier & Moulines) — the non-stationary
//! extension of the paper's Eq. 19 policy.
//!
//! Selection uses the *windowed* mean and count so stale observations stop
//! influencing the index once qualities drift; the cumulative estimator is
//! still maintained for inspection and for interface parity.

use crate::estimator::QualityEstimator;
use crate::policy::SelectionPolicy;
use crate::topk::top_k_by_score;
use crate::windowed::SlidingWindowEstimator;
use cdt_quality::ObservationMatrix;
use cdt_types::{Round, SellerId};
use rand::RngCore;

/// SW-UCB over sellers: index
/// `q̂_i = mean_W(i) + sqrt(w · ln(min(Σn, W·M)) / n_W(i))`, full initial
/// sweep like CMAB-HS.
#[derive(Debug, Clone)]
pub struct SlidingWindowUcbPolicy {
    windowed: SlidingWindowEstimator,
    cumulative: QualityEstimator,
    k: usize,
    exploration_weight: f64,
}

impl SlidingWindowUcbPolicy {
    /// Creates an SW-UCB policy with the paper's `w = K + 1` exploration
    /// weight and a per-seller window of `window` observations.
    #[must_use]
    pub fn new(m: usize, k: usize, window: usize) -> Self {
        Self {
            windowed: SlidingWindowEstimator::new(m, window),
            cumulative: QualityEstimator::new(m),
            k,
            exploration_weight: (k + 1) as f64,
        }
    }

    /// The current SW-UCB index of every seller.
    #[must_use]
    pub fn indices(&self) -> Vec<f64> {
        let m = self.windowed.num_sellers();
        // Cap the log argument at the total window capacity: with forgetting,
        // the index's exploration pressure must not grow without bound.
        let horizon = (self.windowed.total_seen() as f64).min((m as u64 * 10_000) as f64);
        (0..m)
            .map(|i| {
                let id = SellerId(i);
                let n = self.windowed.count(id);
                if n == 0 {
                    f64::INFINITY
                } else if horizon <= 1.0 {
                    self.windowed.mean(id)
                } else {
                    self.windowed.mean(id)
                        + (self.exploration_weight * horizon.ln() / n as f64).sqrt()
                }
            })
            .collect()
    }
}

impl SelectionPolicy for SlidingWindowUcbPolicy {
    fn name(&self) -> String {
        "SW-UCB".to_owned()
    }

    fn select(&mut self, round: Round, _rng: &mut dyn RngCore) -> Vec<SellerId> {
        if round.is_initial() {
            return (0..self.windowed.num_sellers()).map(SellerId).collect();
        }
        top_k_by_score(&self.indices(), self.k)
    }

    fn observe(&mut self, _round: Round, observations: &ObservationMatrix) {
        self.windowed.update_round(observations);
        self.cumulative.update_round(observations);
    }

    fn game_quality(&self, id: SellerId) -> f64 {
        // Windowed mean: under drift this is the current quality, which is
        // what the Stackelberg game should price.
        self.windowed.mean(id)
    }

    fn estimator(&self) -> &QualityEstimator {
        &self.cumulative
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn observe(p: &mut SlidingWindowUcbPolicy, round: Round, sel: &[SellerId], qs: &[f64]) {
        let rows = sel.iter().map(|id| vec![qs[id.index()]; 4]).collect();
        p.observe(round, &ObservationMatrix::new(sel.to_vec(), rows));
    }

    #[test]
    fn initial_round_selects_all() {
        let mut p = SlidingWindowUcbPolicy::new(5, 2, 40);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(p.select(Round(0), &mut rng).len(), 5);
    }

    #[test]
    fn adapts_after_abrupt_quality_change() {
        // Seller 0 starts best; after round 200 seller 2 becomes best.
        // SW-UCB must shift its modal selection; the growing window of
        // stale evidence would pin a cumulative-mean policy to seller 0.
        let mut p = SlidingWindowUcbPolicy::new(3, 1, 40);
        let mut rng = StdRng::seed_from_u64(2);
        let before = [0.9, 0.5, 0.3];
        let after = [0.3, 0.5, 0.9];
        let sel0 = p.select(Round(0), &mut rng);
        observe(&mut p, Round(0), &sel0, &before);
        for t in 1..200 {
            let sel = p.select(Round(t), &mut rng);
            observe(&mut p, Round(t), &sel, &before);
        }
        let mut hits_after = 0;
        for t in 200..600 {
            let sel = p.select(Round(t), &mut rng);
            if sel == vec![SellerId(2)] && t >= 400 {
                hits_after += 1;
            }
            observe(&mut p, Round(t), &sel, &after);
        }
        assert!(
            hits_after as f64 / 200.0 > 0.6,
            "post-drift hit rate {hits_after}/200"
        );
    }

    #[test]
    fn game_quality_is_windowed_mean() {
        let mut p = SlidingWindowUcbPolicy::new(2, 1, 4);
        observe(&mut p, Round(0), &[SellerId(0)], &[0.2, 0.0]);
        observe(&mut p, Round(1), &[SellerId(0)], &[0.8, 0.0]);
        // Window (size 4) holds the last 4 of 8 observations: all 0.8.
        assert!((p.game_quality(SellerId(0)) - 0.8).abs() < 1e-12);
        // The cumulative estimator still remembers everything.
        assert!((p.estimator().mean(SellerId(0)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn unexplored_sellers_have_infinite_index() {
        let mut p = SlidingWindowUcbPolicy::new(3, 1, 10);
        observe(&mut p, Round(0), &[SellerId(0)], &[0.9, 0.0, 0.0]);
        let idx = p.indices();
        assert_eq!(idx[1], f64::INFINITY);
        assert_eq!(idx[2], f64::INFINITY);
    }
}
