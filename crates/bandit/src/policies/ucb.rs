//! The CMAB-HS selection policy (Algorithm 1, seller-selection half).

use crate::estimator::QualityEstimator;
use crate::index::{ucb_indices, ucb_indices_into, UcbConfig};
use crate::policy::SelectionPolicy;
use crate::topk::top_k_by_score_into;
use cdt_quality::ObservationMatrix;
use cdt_types::{Round, SellerId};
use rand::RngCore;

/// The paper's extended-UCB policy:
///
/// - **round 0** (initial exploration, Alg. 1 steps 2–5): select *all* `M`
///   sellers so that every estimate is seeded with `L` observations;
/// - **round t ≥ 1** (steps 7–10): select the top-`K` sellers by the UCB
///   index `q̂_i = q̄_i + sqrt(w · ln(Σ_j n_j) / n_i)` with `w = K + 1`.
#[derive(Debug, Clone)]
pub struct CmabUcbPolicy {
    estimator: QualityEstimator,
    config: UcbConfig,
    k: usize,
    /// Skip the full initial sweep (used by ablations that want a pure
    /// UCB cold start; infinite indices then force coverage over the first
    /// `⌈M/K⌉` rounds instead of one `M`-seller round).
    full_initial_sweep: bool,
    /// Reused UCB-index buffer (`select_into` hot path).
    scores: Vec<f64>,
    /// Reused index-permutation buffer for partial top-K selection.
    topk_scratch: Vec<usize>,
}

impl CmabUcbPolicy {
    /// The paper's configuration: full initial sweep, `w = K + 1`.
    #[must_use]
    pub fn new(m: usize, k: usize) -> Self {
        Self {
            estimator: QualityEstimator::new(m),
            config: UcbConfig::paper(k),
            k,
            full_initial_sweep: true,
            scores: Vec::new(),
            topk_scratch: Vec::new(),
        }
    }

    /// Overrides the exploration weight (ablation).
    #[must_use]
    pub fn with_exploration_weight(mut self, w: f64) -> Self {
        self.config = UcbConfig::with_weight(w);
        self
    }

    /// Disables the round-0 full sweep (ablation).
    #[must_use]
    pub fn without_initial_sweep(mut self) -> Self {
        self.full_initial_sweep = false;
        self
    }

    /// The current UCB index of every seller.
    #[must_use]
    pub fn indices(&self) -> Vec<f64> {
        ucb_indices(&self.estimator, &self.config)
    }
}

impl SelectionPolicy for CmabUcbPolicy {
    fn name(&self) -> String {
        "CMAB-HS".to_owned()
    }

    fn select(&mut self, round: Round, rng: &mut dyn RngCore) -> Vec<SellerId> {
        let mut out = Vec::new();
        self.select_into(round, rng, &mut out);
        out
    }

    fn select_into(&mut self, round: Round, _rng: &mut dyn RngCore, out: &mut Vec<SellerId>) {
        if round.is_initial() && self.full_initial_sweep {
            out.clear();
            out.extend((0..self.estimator.num_sellers()).map(SellerId));
            return;
        }
        ucb_indices_into(&self.estimator, &self.config, &mut self.scores);
        top_k_by_score_into(&self.scores, self.k, &mut self.topk_scratch, out);
    }

    fn observe(&mut self, _round: Round, observations: &ObservationMatrix) {
        self.estimator.update_round(observations);
    }

    fn game_quality(&self, id: SellerId) -> f64 {
        self.estimator.mean(id)
    }

    fn selection_score(&self, id: SellerId) -> f64 {
        self.config.index(
            self.estimator.mean(id),
            self.estimator.count(id),
            self.estimator.total_count(),
        )
    }

    fn estimator(&self) -> &QualityEstimator {
        &self.estimator
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn observe_all(policy: &mut CmabUcbPolicy, round: Round, selected: &[SellerId], qs: &[f64]) {
        let rows = selected
            .iter()
            .map(|id| vec![qs[id.index()]; 4])
            .collect::<Vec<_>>();
        policy.observe(round, &ObservationMatrix::new(selected.to_vec(), rows));
    }

    #[test]
    fn round_zero_selects_everyone() {
        let mut p = CmabUcbPolicy::new(5, 2);
        let mut rng = StdRng::seed_from_u64(1);
        let sel = p.select(Round(0), &mut rng);
        assert_eq!(sel.len(), 5);
    }

    #[test]
    fn later_rounds_select_k() {
        let mut p = CmabUcbPolicy::new(5, 2);
        let mut rng = StdRng::seed_from_u64(1);
        let sel0 = p.select(Round(0), &mut rng);
        observe_all(&mut p, Round(0), &sel0, &[0.1, 0.9, 0.5, 0.3, 0.7]);
        let sel1 = p.select(Round(1), &mut rng);
        assert_eq!(sel1.len(), 2);
    }

    #[test]
    fn converges_to_true_top_k_with_clean_observations() {
        // Noise-free observations: after the initial sweep the means are
        // exact; UCB still explores early, but with a long horizon the
        // modal selection must be the true top-K.
        let qs = [0.2, 0.9, 0.4, 0.8, 0.1];
        let mut p = CmabUcbPolicy::new(5, 2);
        let mut rng = StdRng::seed_from_u64(7);
        let sel0 = p.select(Round(0), &mut rng);
        observe_all(&mut p, Round(0), &sel0, &qs);
        let mut hits = 0;
        let rounds = 3000;
        for t in 1..=rounds {
            let sel = p.select(Round(t), &mut rng);
            let mut s: Vec<usize> = sel.iter().map(|x| x.index()).collect();
            s.sort_unstable();
            if s == vec![1, 3] {
                hits += 1;
            }
            observe_all(&mut p, Round(t), &sel, &qs);
        }
        assert!(
            hits as f64 / rounds as f64 > 0.9,
            "true top-K hit rate {hits}/{rounds}"
        );
    }

    #[test]
    fn without_initial_sweep_still_covers_everyone() {
        let qs = [0.2, 0.9, 0.4];
        let mut p = CmabUcbPolicy::new(3, 1).without_initial_sweep();
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = std::collections::HashSet::new();
        for t in 0..3 {
            let sel = p.select(Round(t), &mut rng);
            assert_eq!(sel.len(), 1);
            seen.insert(sel[0].index());
            observe_all(&mut p, Round(t), &sel, &qs);
        }
        assert_eq!(seen.len(), 3, "infinite UCB indices force coverage");
    }

    #[test]
    fn game_quality_is_sample_mean() {
        let mut p = CmabUcbPolicy::new(2, 1);
        observe_all(&mut p, Round(0), &[SellerId(0)], &[0.6, 0.0]);
        assert!((p.game_quality(SellerId(0)) - 0.6).abs() < 1e-12);
        assert_eq!(p.game_quality(SellerId(1)), 0.0);
    }

    #[test]
    fn exploration_weight_override() {
        let p = CmabUcbPolicy::new(3, 2).with_exploration_weight(1.0);
        assert_eq!(p.config.exploration_weight, 1.0);
    }
}
