//! The classical CUCB policy of Chen, Wang & Yuan (reference `[33]` in the
//! paper), as an additional baseline.
//!
//! Index: `q̄_i + sqrt(3 ln t / (2 n_i))`, where `t` counts *rounds* (not
//! observations). The contrast with the paper's Eq. 19 is the exploration
//! scale: CUCB's width does not grow with the combinatorial pull size `K`.

use crate::estimator::QualityEstimator;
use crate::policy::SelectionPolicy;
use crate::topk::top_k_by_score;
use cdt_quality::ObservationMatrix;
use cdt_types::{Round, SellerId};
use rand::RngCore;

/// Classical CUCB with a full initial sweep (so its cold start matches
/// CMAB-HS and comparisons isolate the index formula).
#[derive(Debug, Clone)]
pub struct CucbPolicy {
    estimator: QualityEstimator,
    k: usize,
    rounds_seen: usize,
}

impl CucbPolicy {
    /// Creates a CUCB policy.
    #[must_use]
    pub fn new(m: usize, k: usize) -> Self {
        Self {
            estimator: QualityEstimator::new(m),
            k,
            rounds_seen: 0,
        }
    }

    fn indices(&self) -> Vec<f64> {
        let t = self.rounds_seen.max(1) as f64;
        (0..self.estimator.num_sellers())
            .map(|i| {
                let id = SellerId(i);
                let n = self.estimator.count(id);
                if n == 0 {
                    f64::INFINITY
                } else {
                    self.estimator.mean(id) + (3.0 * t.ln() / (2.0 * n as f64)).sqrt()
                }
            })
            .collect()
    }
}

impl SelectionPolicy for CucbPolicy {
    fn name(&self) -> String {
        "CUCB".to_owned()
    }

    fn select(&mut self, round: Round, _rng: &mut dyn RngCore) -> Vec<SellerId> {
        if round.is_initial() {
            return (0..self.estimator.num_sellers()).map(SellerId).collect();
        }
        top_k_by_score(&self.indices(), self.k)
    }

    fn observe(&mut self, _round: Round, observations: &ObservationMatrix) {
        self.rounds_seen += 1;
        self.estimator.update_round(observations);
    }

    fn game_quality(&self, id: SellerId) -> f64 {
        self.estimator.mean(id)
    }

    fn estimator(&self) -> &QualityEstimator {
        &self.estimator
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn observe(policy: &mut CucbPolicy, round: Round, selected: &[SellerId], qs: &[f64]) {
        let rows = selected
            .iter()
            .map(|id| vec![qs[id.index()]; 2])
            .collect::<Vec<_>>();
        policy.observe(round, &ObservationMatrix::new(selected.to_vec(), rows));
    }

    #[test]
    fn initial_round_selects_all() {
        let mut p = CucbPolicy::new(4, 2);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(p.select(Round(0), &mut rng).len(), 4);
    }

    #[test]
    fn converges_to_best_arms() {
        let qs = [0.1, 0.9, 0.3, 0.8];
        let mut p = CucbPolicy::new(4, 2);
        let mut rng = StdRng::seed_from_u64(2);
        let sel0 = p.select(Round(0), &mut rng);
        observe(&mut p, Round(0), &sel0, &qs);
        let mut hits = 0;
        let rounds = 2000;
        for t in 1..=rounds {
            let sel = p.select(Round(t), &mut rng);
            let mut s: Vec<usize> = sel.iter().map(|x| x.index()).collect();
            s.sort_unstable();
            if s == vec![1, 3] {
                hits += 1;
            }
            observe(&mut p, Round(t), &sel, &qs);
        }
        assert!(hits as f64 / rounds as f64 > 0.9, "{hits}/{rounds}");
    }

    #[test]
    fn narrower_width_than_paper_ucb() {
        // Same state ⇒ CUCB's exploration width must be smaller than the
        // K-scaled Eq. 19 width for K ≥ 2 (3/2 < K+1).
        let qs = [0.5, 0.5, 0.5, 0.5];
        let mut p = CucbPolicy::new(4, 3);
        let mut rng = StdRng::seed_from_u64(3);
        let sel0 = p.select(Round(0), &mut rng);
        observe(&mut p, Round(0), &sel0, &qs);
        let cucb_idx = p.indices()[0];
        let paper_width =
            crate::index::UcbConfig::paper(3).confidence_width(2, p.estimator().total_count());
        assert!(cucb_idx - 0.5 < paper_width);
    }
}
