//! ε-greedy extension policy (not part of the paper's comparison set).

use crate::estimator::QualityEstimator;
use crate::policy::{random_k_subset, SelectionPolicy};
use crate::topk::top_k_by_score;
use cdt_quality::ObservationMatrix;
use cdt_types::{Round, SellerId};
use rand::{Rng, RngCore};

/// Every round: with probability ε select a uniform random `K`-subset,
/// otherwise select the top-K by sample mean. Unlike ε-first the
/// exploration is spread over the whole horizon, so the policy keeps
/// adapting if qualities were mis-estimated early.
#[derive(Debug, Clone)]
pub struct EpsilonGreedyPolicy {
    estimator: QualityEstimator,
    k: usize,
    epsilon: f64,
}

impl EpsilonGreedyPolicy {
    /// Creates an ε-greedy policy.
    ///
    /// # Panics
    /// Panics unless `epsilon ∈ [0, 1]`.
    #[must_use]
    pub fn new(m: usize, k: usize, epsilon: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&epsilon),
            "epsilon must lie in [0, 1], got {epsilon}"
        );
        Self {
            estimator: QualityEstimator::new(m),
            k,
            epsilon,
        }
    }
}

impl SelectionPolicy for EpsilonGreedyPolicy {
    fn name(&self) -> String {
        format!("{}-greedy", self.epsilon)
    }

    fn select(&mut self, _round: Round, rng: &mut dyn RngCore) -> Vec<SellerId> {
        if rng.gen_bool(self.epsilon) {
            random_k_subset(self.estimator.num_sellers(), self.k, rng)
        } else {
            top_k_by_score(self.estimator.means(), self.k)
        }
    }

    fn observe(&mut self, _round: Round, observations: &ObservationMatrix) {
        self.estimator.update_round(observations);
    }

    fn game_quality(&self, id: SellerId) -> f64 {
        self.estimator.mean(id)
    }

    fn estimator(&self) -> &QualityEstimator {
        &self.estimator
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn epsilon_zero_is_pure_greedy() {
        let mut p = EpsilonGreedyPolicy::new(3, 1, 0.0);
        let m = ObservationMatrix::new(
            vec![SellerId(0), SellerId(1), SellerId(2)],
            vec![vec![0.1], vec![0.8], vec![0.4]],
        );
        p.observe(Round(0), &m);
        let mut rng = StdRng::seed_from_u64(1);
        for t in 0..20 {
            assert_eq!(p.select(Round(t), &mut rng), vec![SellerId(1)]);
        }
    }

    #[test]
    fn epsilon_one_is_pure_random() {
        let mut p = EpsilonGreedyPolicy::new(10, 2, 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = std::collections::HashSet::new();
        for t in 0..200 {
            for id in p.select(Round(t), &mut rng) {
                seen.insert(id.index());
            }
        }
        assert_eq!(seen.len(), 10);
    }

    #[test]
    fn exploration_rate_approximates_epsilon() {
        // With distinct means, any non-greedy selection implies an explore
        // round; count how many rounds deviate from the greedy set.
        let mut p = EpsilonGreedyPolicy::new(4, 1, 0.3);
        let m = ObservationMatrix::new(
            (0..4).map(SellerId).collect(),
            vec![vec![0.1], vec![0.2], vec![0.3], vec![0.95]],
        );
        p.observe(Round(0), &m);
        let mut rng = StdRng::seed_from_u64(3);
        let rounds = 20_000;
        let mut non_greedy = 0;
        for t in 0..rounds {
            if p.select(Round(t), &mut rng) != vec![SellerId(3)] {
                non_greedy += 1;
            }
        }
        // Explore rounds pick a random seller; 3/4 of them differ from the
        // greedy choice ⇒ expected non-greedy rate = 0.3 · 0.75 = 0.225.
        let rate = non_greedy as f64 / rounds as f64;
        assert!((rate - 0.225).abs() < 0.02, "rate {rate}");
    }

    #[test]
    #[should_panic(expected = "epsilon must lie in [0, 1]")]
    fn rejects_bad_epsilon() {
        let _ = EpsilonGreedyPolicy::new(3, 1, -0.1);
    }
}
