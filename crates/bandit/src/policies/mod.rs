//! Concrete selection policies.
//!
//! Paper evaluation set (Sec. V-A):
//! - [`CmabUcbPolicy`] — the CMAB-HS policy (Algorithm 1): full initial
//!   sweep, then top-K by the Eq. 19 UCB index;
//! - [`EpsilonFirstPolicy`] — pure exploration for the first `εN` rounds,
//!   then greedy top-K by sample mean;
//! - [`RandomPolicy`] — uniform random `K`-subsets every round;
//! - [`OraclePolicy`] — clairvoyant "optimal": knows the true expected
//!   qualities and always selects the true top-K.
//!
//! Extensions (not in the paper's comparison, used by ablation benches and
//! extra examples):
//! - [`EpsilonGreedyPolicy`] — per-round ε-mixing of exploration and greedy;
//! - [`ThompsonPolicy`] — Gaussian posterior sampling;
//! - [`CucbPolicy`] — the classical CUCB index of Chen et al. (reference
//!   `[33]` in the paper), `q̄_i + sqrt(3 ln t / (2 n_i))`;
//! - [`SlidingWindowUcbPolicy`] — SW-UCB over a forgetting window, for the
//!   non-stationary qualities of Def. 3's Remark.

mod cucb;
mod epsilon_first;
mod epsilon_greedy;
mod oracle;
mod random;
mod sliding_ucb;
mod thompson;
mod ucb;

pub use cucb::CucbPolicy;
pub use epsilon_first::EpsilonFirstPolicy;
pub use epsilon_greedy::EpsilonGreedyPolicy;
pub use oracle::OraclePolicy;
pub use random::RandomPolicy;
pub use sliding_ucb::SlidingWindowUcbPolicy;
pub use thompson::ThompsonPolicy;
pub use ucb::CmabUcbPolicy;
