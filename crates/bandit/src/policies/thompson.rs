//! Thompson-sampling extension policy (not in the paper's comparison set).
//!
//! Gaussian posterior sampling: seller `i`'s index is drawn from
//! `N(q̄_i, 1/n_i)`; unexplored sellers draw from the uniform prior on
//! `[0, 1]` plus a large bonus so they are tried first. For bounded
//! rewards this is the standard sub-Gaussian Thompson heuristic.

use crate::estimator::QualityEstimator;
use crate::policy::SelectionPolicy;
use crate::topk::top_k_by_score;
use cdt_quality::math::sample_standard_normal;
use cdt_quality::ObservationMatrix;
use cdt_types::{Round, SellerId};
use rand::{Rng, RngCore};

/// Gaussian Thompson sampling over seller qualities, pulling the top-K of
/// one posterior draw per seller per round.
#[derive(Debug, Clone)]
pub struct ThompsonPolicy {
    estimator: QualityEstimator,
    k: usize,
}

impl ThompsonPolicy {
    /// Creates a Thompson-sampling policy.
    #[must_use]
    pub fn new(m: usize, k: usize) -> Self {
        Self {
            estimator: QualityEstimator::new(m),
            k,
        }
    }
}

impl SelectionPolicy for ThompsonPolicy {
    fn name(&self) -> String {
        "thompson".to_owned()
    }

    fn select(&mut self, _round: Round, rng: &mut dyn RngCore) -> Vec<SellerId> {
        let scores: Vec<f64> = (0..self.estimator.num_sellers())
            .map(|i| {
                let id = SellerId(i);
                let n = self.estimator.count(id);
                if n == 0 {
                    // Uniform prior draw + bonus: unexplored arms outrank
                    // any explored arm (whose draws concentrate near [0,1]).
                    2.0 + rng.gen_range(0.0..1.0)
                } else {
                    let std = (1.0 / n as f64).sqrt();
                    self.estimator.mean(id) + std * sample_standard_normal(rng)
                }
            })
            .collect();
        top_k_by_score(&scores, self.k)
    }

    fn observe(&mut self, _round: Round, observations: &ObservationMatrix) {
        self.estimator.update_round(observations);
    }

    fn game_quality(&self, id: SellerId) -> f64 {
        self.estimator.mean(id)
    }

    fn estimator(&self) -> &QualityEstimator {
        &self.estimator
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn unexplored_sellers_are_tried_first() {
        let mut p = ThompsonPolicy::new(4, 2);
        // Explore sellers 0 and 1 heavily with high observed quality.
        let m = ObservationMatrix::new(
            vec![SellerId(0), SellerId(1)],
            vec![vec![0.99; 50], vec![0.98; 50]],
        );
        p.observe(Round(0), &m);
        let mut rng = StdRng::seed_from_u64(1);
        let sel = p.select(Round(1), &mut rng);
        let set: std::collections::HashSet<usize> = sel.iter().map(|s| s.index()).collect();
        assert_eq!(
            set,
            [2usize, 3].into_iter().collect(),
            "unexplored arms outrank explored ones"
        );
    }

    #[test]
    fn concentrates_on_best_arm_with_data() {
        let mut p = ThompsonPolicy::new(3, 1);
        let m = ObservationMatrix::new(
            vec![SellerId(0), SellerId(1), SellerId(2)],
            vec![vec![0.2; 400], vec![0.8; 400], vec![0.5; 400]],
        );
        p.observe(Round(0), &m);
        let mut rng = StdRng::seed_from_u64(2);
        let mut best = 0;
        let rounds = 1000;
        for t in 0..rounds {
            if p.select(Round(t), &mut rng) == vec![SellerId(1)] {
                best += 1;
            }
        }
        assert!(
            best as f64 / rounds as f64 > 0.95,
            "posterior should concentrate: {best}/{rounds}"
        );
    }

    #[test]
    fn selection_size_is_k() {
        let mut p = ThompsonPolicy::new(10, 4);
        let mut rng = StdRng::seed_from_u64(3);
        let sel = p.select(Round(0), &mut rng);
        assert_eq!(sel.len(), 4);
    }
}
