//! The ε-first baseline (Vermorel & Mohri; used as a comparison algorithm
//! in the paper's evaluation).

use crate::estimator::QualityEstimator;
use crate::policy::{random_k_subset_into, SelectionPolicy};
use crate::topk::top_k_by_score_into;
use cdt_quality::ObservationMatrix;
use cdt_types::{Round, SellerId};
use rand::RngCore;

/// Pure exploration for the first `⌈εN⌉` rounds (uniform random
/// `K`-subsets), then pure exploitation (top-K by sample mean) for the
/// remaining `(1−ε)N` rounds.
#[derive(Debug, Clone)]
pub struct EpsilonFirstPolicy {
    estimator: QualityEstimator,
    k: usize,
    epsilon: f64,
    horizon: usize,
    /// Reused index-permutation buffer for partial top-K selection.
    topk_scratch: Vec<usize>,
}

impl EpsilonFirstPolicy {
    /// Creates an ε-first policy for `m` sellers, selection size `k`, a
    /// known horizon of `n` rounds, and exploration fraction `epsilon`.
    ///
    /// # Panics
    /// Panics unless `epsilon ∈ [0, 1]`.
    #[must_use]
    pub fn new(m: usize, k: usize, n: usize, epsilon: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&epsilon),
            "epsilon must lie in [0, 1], got {epsilon}"
        );
        Self {
            estimator: QualityEstimator::new(m),
            k,
            epsilon,
            horizon: n,
            topk_scratch: Vec::new(),
        }
    }

    /// Number of pure-exploration rounds `⌈εN⌉`.
    #[must_use]
    pub fn exploration_rounds(&self) -> usize {
        (self.epsilon * self.horizon as f64).ceil() as usize
    }

    /// `true` while `round` falls inside the exploration phase.
    #[must_use]
    pub fn is_exploring(&self, round: Round) -> bool {
        round.index() < self.exploration_rounds()
    }
}

impl SelectionPolicy for EpsilonFirstPolicy {
    fn name(&self) -> String {
        format!("{}-first", self.epsilon)
    }

    fn select(&mut self, round: Round, rng: &mut dyn RngCore) -> Vec<SellerId> {
        let mut out = Vec::new();
        self.select_into(round, rng, &mut out);
        out
    }

    fn select_into(&mut self, round: Round, rng: &mut dyn RngCore, out: &mut Vec<SellerId>) {
        if self.is_exploring(round) {
            random_k_subset_into(self.estimator.num_sellers(), self.k, rng, out);
        } else {
            top_k_by_score_into(self.estimator.means(), self.k, &mut self.topk_scratch, out);
        }
    }

    fn observe(&mut self, _round: Round, observations: &ObservationMatrix) {
        self.estimator.update_round(observations);
    }

    fn game_quality(&self, id: SellerId) -> f64 {
        self.estimator.mean(id)
    }

    fn estimator(&self) -> &QualityEstimator {
        &self.estimator
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn phase_boundary_is_ceil_of_epsilon_n() {
        let p = EpsilonFirstPolicy::new(10, 2, 100, 0.1);
        assert_eq!(p.exploration_rounds(), 10);
        assert!(p.is_exploring(Round(9)));
        assert!(!p.is_exploring(Round(10)));

        let p = EpsilonFirstPolicy::new(10, 2, 7, 0.5);
        assert_eq!(p.exploration_rounds(), 4); // ceil(3.5)
    }

    #[test]
    fn exploitation_picks_top_k_by_mean() {
        let mut p = EpsilonFirstPolicy::new(3, 1, 10, 0.1);
        let m = ObservationMatrix::new(
            vec![SellerId(0), SellerId(1), SellerId(2)],
            vec![vec![0.2], vec![0.9], vec![0.5]],
        );
        p.observe(Round(0), &m);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(p.select(Round(5), &mut rng), vec![SellerId(1)]);
    }

    #[test]
    fn exploration_is_random_k_subset() {
        let mut p = EpsilonFirstPolicy::new(10, 3, 100, 0.5);
        let mut rng = StdRng::seed_from_u64(2);
        let sel = p.select(Round(0), &mut rng);
        assert_eq!(sel.len(), 3);
        let set: std::collections::HashSet<_> = sel.iter().collect();
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn epsilon_zero_never_explores() {
        let p = EpsilonFirstPolicy::new(5, 2, 100, 0.0);
        assert_eq!(p.exploration_rounds(), 0);
        assert!(!p.is_exploring(Round(0)));
    }

    #[test]
    fn epsilon_one_always_explores() {
        let p = EpsilonFirstPolicy::new(5, 2, 100, 1.0);
        assert!(p.is_exploring(Round(99)));
    }

    #[test]
    fn name_embeds_epsilon() {
        assert_eq!(EpsilonFirstPolicy::new(5, 2, 10, 0.3).name(), "0.3-first");
    }

    #[test]
    #[should_panic(expected = "epsilon must lie in [0, 1]")]
    fn rejects_bad_epsilon() {
        let _ = EpsilonFirstPolicy::new(5, 2, 10, 1.5);
    }
}
