//! Batched (multi-lane) selection policies for the lockstep replication
//! engine.
//!
//! A [`BatchSelectionPolicy`] carries `B` independent replication lanes of
//! the *same* policy, with per-lane learner state stored
//! structure-of-arrays across the replication axis: [`BatchCmabUcb`] keeps
//! estimator counts and means as flat `B×M` matrices so the per-round
//! UCB/estimator sweeps run over contiguous memory, while every lane keeps
//! its own RNG stream and total-count column. Each lane's arithmetic goes
//! through exactly the kernels of the single-lane path
//! ([`crate::index::ucb_indices_from_columns_into`],
//! [`crate::estimator::update_round_columns`]), so lane `b`'s outputs are
//! bit-for-bit what a standalone [`CmabUcbPolicy`] would produce.
//!
//! Policies without a flat SoA form (oracle, ε-first, random, …) batch via
//! [`LanePolicies`], which simply owns one boxed [`SelectionPolicy`] per
//! lane — the lockstep runner still amortizes its scratch and scheduling
//! over the batch.

use crate::estimator::update_round_columns;
use crate::index::ucb_indices_from_columns_into;

use crate::policy::SelectionPolicy;
use crate::topk::top_k_by_score_into;
use crate::UcbConfig;
use cdt_quality::ObservationMatrix;
use cdt_types::{Round, SellerId};
use rand::RngCore;

/// `B` independent lanes of one selection policy, advanced in lockstep.
///
/// The contract mirrors [`SelectionPolicy`] with a `lane` index on every
/// call; lane `b` must behave exactly like a standalone instance of the
/// policy fed the same rounds, RNG stream, and observations — the batched
/// form is a layout/scheduling optimization, never a semantic one.
pub trait BatchSelectionPolicy {
    /// Number of replication lanes `B`.
    fn num_lanes(&self) -> usize;

    /// Chooses lane `b`'s sellers for `round` into `out` (same contract as
    /// [`SelectionPolicy::select_into`]).
    fn select_into(
        &mut self,
        lane: usize,
        round: Round,
        rng: &mut dyn RngCore,
        out: &mut Vec<SellerId>,
    );

    /// Feeds lane `b` the observed qualities of its selected sellers.
    fn observe(&mut self, lane: usize, round: Round, observations: &ObservationMatrix);

    /// Lane `b`'s quality estimate handed to the Stackelberg game.
    fn game_quality(&self, lane: usize, id: SellerId) -> f64;

    /// Lane `b`'s diagnostic ranking score for seller `id` (defaults to
    /// the game-side estimate, as in [`SelectionPolicy::selection_score`]).
    fn selection_score(&self, lane: usize, id: SellerId) -> f64 {
        self.game_quality(lane, id)
    }

    /// Records the scenario-cell id each lane serves, for cell-packing
    /// schedulers that mix lanes from different sweep cells in one batch.
    /// Pure metadata — implementations must not let it influence
    /// selection, observation, or scoring. Default: discarded.
    fn set_lane_cells(&mut self, _cells: &[u64]) {}

    /// The scenario-cell id lane `b` serves, if one was recorded via
    /// [`BatchSelectionPolicy::set_lane_cells`]. Default: `None`.
    fn lane_cell(&self, _lane: usize) -> Option<u64> {
        None
    }
}

/// The CMAB-HS UCB policy over `B` lanes, counts/means stored as flat
/// lane-major `B×M` matrices.
#[derive(Debug, Clone)]
pub struct BatchCmabUcb {
    /// Lane-major `B×M` observation counters (`counts[b*m + i] = n_i` of
    /// lane `b`).
    counts: Vec<u64>,
    /// Lane-major `B×M` sample means, parallel to `counts`.
    means: Vec<f64>,
    /// Per-lane `Σ_j n_j` (each lane keeps its own `ln(total)` hoist).
    total_counts: Vec<u64>,
    config: UcbConfig,
    m: usize,
    k: usize,
    full_initial_sweep: bool,
    /// Shared UCB-index buffer — lanes run lockstep, so one suffices.
    scores: Vec<f64>,
    /// Shared index-permutation buffer for partial top-K selection.
    topk_scratch: Vec<usize>,
    /// Scenario-cell id per lane (metadata from a cell-packing scheduler;
    /// empty when every lane serves the same cell).
    lane_cells: Vec<u64>,
}

impl BatchCmabUcb {
    /// `b` lanes of the paper's configuration (full initial sweep,
    /// `w = K + 1`) over `m` sellers.
    #[must_use]
    pub fn new(b: usize, m: usize, k: usize) -> Self {
        Self {
            counts: vec![0; b * m],
            means: vec![0.0; b * m],
            total_counts: vec![0; b],
            config: UcbConfig::paper(k),
            m,
            k,
            full_initial_sweep: true,
            scores: Vec::new(),
            topk_scratch: Vec::new(),
            lane_cells: Vec::new(),
        }
    }

    /// Overrides the exploration weight on every lane (ablation).
    ///
    /// # Panics
    /// Panics unless `w > 0` and finite.
    #[must_use]
    pub fn with_exploration_weight(mut self, w: f64) -> Self {
        self.config = UcbConfig::with_weight(w);
        self
    }

    /// Lane `b`'s estimator columns (`counts`, `means`).
    #[must_use]
    pub fn lane_columns(&self, lane: usize) -> (&[u64], &[f64]) {
        let row = lane * self.m..(lane + 1) * self.m;
        (&self.counts[row.clone()], &self.means[row])
    }
}

impl BatchSelectionPolicy for BatchCmabUcb {
    fn num_lanes(&self) -> usize {
        self.total_counts.len()
    }

    fn select_into(
        &mut self,
        lane: usize,
        round: Round,
        _rng: &mut dyn RngCore,
        out: &mut Vec<SellerId>,
    ) {
        if round.is_initial() && self.full_initial_sweep {
            out.clear();
            out.extend((0..self.m).map(SellerId));
            return;
        }
        let row = lane * self.m..(lane + 1) * self.m;
        ucb_indices_from_columns_into(
            &self.counts[row.clone()],
            &self.means[row],
            self.total_counts[lane],
            &self.config,
            &mut self.scores,
        );
        top_k_by_score_into(&self.scores, self.k, &mut self.topk_scratch, out);
    }

    fn observe(&mut self, lane: usize, _round: Round, observations: &ObservationMatrix) {
        let row = lane * self.m..(lane + 1) * self.m;
        update_round_columns(
            &mut self.counts[row.clone()],
            &mut self.means[row],
            &mut self.total_counts[lane],
            observations,
        );
    }

    fn game_quality(&self, lane: usize, id: SellerId) -> f64 {
        self.means[lane * self.m + id.index()]
    }

    fn selection_score(&self, lane: usize, id: SellerId) -> f64 {
        let i = lane * self.m + id.index();
        self.config
            .index(self.means[i], self.counts[i], self.total_counts[lane])
    }

    fn set_lane_cells(&mut self, cells: &[u64]) {
        self.lane_cells.clear();
        self.lane_cells.extend_from_slice(cells);
    }

    fn lane_cell(&self, lane: usize) -> Option<u64> {
        self.lane_cells.get(lane).copied()
    }
}

/// Fallback batching: one boxed [`SelectionPolicy`] per lane.
///
/// Used for policies whose state has no profitable SoA form (oracle,
/// ε-first, random, Thompson, CUCB); the lockstep runner still batches
/// their scratch buffers and scheduling.
pub struct LanePolicies {
    lanes: Vec<Box<dyn SelectionPolicy>>,
    /// Scenario-cell id per lane (see [`BatchSelectionPolicy::set_lane_cells`]).
    lane_cells: Vec<u64>,
}

impl LanePolicies {
    /// Wraps one policy instance per lane.
    #[must_use]
    pub fn new(lanes: Vec<Box<dyn SelectionPolicy>>) -> Self {
        Self {
            lanes,
            lane_cells: Vec::new(),
        }
    }
}

impl BatchSelectionPolicy for LanePolicies {
    fn num_lanes(&self) -> usize {
        self.lanes.len()
    }

    fn select_into(
        &mut self,
        lane: usize,
        round: Round,
        rng: &mut dyn RngCore,
        out: &mut Vec<SellerId>,
    ) {
        self.lanes[lane].select_into(round, rng, out);
    }

    fn observe(&mut self, lane: usize, round: Round, observations: &ObservationMatrix) {
        self.lanes[lane].observe(round, observations);
    }

    fn game_quality(&self, lane: usize, id: SellerId) -> f64 {
        self.lanes[lane].game_quality(id)
    }

    fn selection_score(&self, lane: usize, id: SellerId) -> f64 {
        self.lanes[lane].selection_score(id)
    }

    fn set_lane_cells(&mut self, cells: &[u64]) {
        self.lane_cells.clear();
        self.lane_cells.extend_from_slice(cells);
    }

    fn lane_cell(&self, lane: usize) -> Option<u64> {
        self.lane_cells.get(lane).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::CmabUcbPolicy;
    use cdt_quality::ObservationBatch;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Deterministic per-lane observation stream: seller `i` observes
    /// values derived from `(lane, round, i, poi)` so lanes genuinely
    /// diverge.
    fn observations(
        lane: usize,
        round: usize,
        selected: &[SellerId],
        l: usize,
    ) -> ObservationMatrix {
        let rows = selected
            .iter()
            .map(|id| {
                (0..l)
                    .map(|p| {
                        let x = (lane as f64 + 1.0) * 0.137
                            + (round as f64 + 1.0) * 0.071
                            + id.index() as f64 * 0.029
                            + p as f64 * 0.013;
                        x.fract()
                    })
                    .collect::<Vec<_>>()
            })
            .collect::<Vec<_>>();
        ObservationMatrix::new(selected.to_vec(), rows)
    }

    #[test]
    fn batched_lanes_are_bit_identical_to_serial_policies() {
        let (b, m, k, l, rounds) = (3usize, 12usize, 4usize, 3usize, 40usize);
        let mut batch = BatchCmabUcb::new(b, m, k);
        let mut serial: Vec<CmabUcbPolicy> = (0..b).map(|_| CmabUcbPolicy::new(m, k)).collect();

        let mut batch_sel = Vec::new();
        let mut serial_sel = Vec::new();
        for t in 0..rounds {
            for lane in 0..b {
                let mut rng_b = StdRng::seed_from_u64(1000 + lane as u64);
                let mut rng_s = StdRng::seed_from_u64(1000 + lane as u64);
                batch.select_into(lane, Round(t), &mut rng_b, &mut batch_sel);
                serial[lane].select_into(Round(t), &mut rng_s, &mut serial_sel);
                assert_eq!(batch_sel, serial_sel, "lane {lane} round {t}");

                for &id in &batch_sel {
                    assert_eq!(
                        batch.game_quality(lane, id).to_bits(),
                        serial[lane].game_quality(id).to_bits(),
                    );
                    assert_eq!(
                        batch.selection_score(lane, id).to_bits(),
                        serial[lane].selection_score(id).to_bits(),
                    );
                }

                let obs = observations(lane, t, &batch_sel, l);
                batch.observe(lane, Round(t), &obs);
                serial[lane].observe(Round(t), &obs);
            }
        }
        // Final estimator state matches column-for-column.
        for lane in 0..b {
            let (counts, means) = batch.lane_columns(lane);
            assert_eq!(counts, serial[lane].estimator().counts());
            let serial_bits: Vec<u64> = serial[lane]
                .estimator()
                .means()
                .iter()
                .map(|q| q.to_bits())
                .collect();
            let batch_bits: Vec<u64> = means.iter().map(|q| q.to_bits()).collect();
            assert_eq!(batch_bits, serial_bits);
        }
    }

    #[test]
    fn lanes_stay_independent() {
        let (b, m, k, l) = (2usize, 6usize, 2usize, 2usize);
        let mut batch = BatchCmabUcb::new(b, m, k);
        let mut rng = StdRng::seed_from_u64(5);
        let mut sel = Vec::new();
        batch.select_into(0, Round(0), &mut rng, &mut sel);
        batch.observe(0, Round(0), &observations(0, 0, &sel, l));
        // Lane 1 saw nothing: still cold.
        let (counts, means) = batch.lane_columns(1);
        assert!(counts.iter().all(|&n| n == 0));
        assert!(means.iter().all(|&q| q == 0.0));
        assert_eq!(batch.game_quality(1, SellerId(0)), 0.0);
    }

    #[test]
    fn lane_policies_delegate_per_lane() {
        let b = 3usize;
        let lanes: Vec<Box<dyn SelectionPolicy>> = (0..b)
            .map(|_| Box::new(CmabUcbPolicy::new(5, 2)) as Box<dyn SelectionPolicy>)
            .collect();
        let mut batch = LanePolicies::new(lanes);
        assert_eq!(batch.num_lanes(), b);
        let mut rng = StdRng::seed_from_u64(9);
        let mut sel = Vec::new();
        batch.select_into(2, Round(0), &mut rng, &mut sel);
        assert_eq!(sel.len(), 5, "initial sweep selects everyone");
        batch.observe(2, Round(0), &observations(2, 0, &sel, 2));
        assert!(batch.game_quality(2, SellerId(0)) > 0.0);
        assert_eq!(batch.game_quality(0, SellerId(0)), 0.0);
    }

    #[test]
    fn lane_cell_metadata_round_trips_without_touching_learner_state() {
        let mut batch = BatchCmabUcb::new(2, 6, 2);
        assert_eq!(batch.lane_cell(0), None, "no cells recorded yet");
        batch.set_lane_cells(&[7, 3]);
        assert_eq!(batch.lane_cell(0), Some(7));
        assert_eq!(batch.lane_cell(1), Some(3));
        assert_eq!(batch.lane_cell(2), None, "out-of-range lane has no cell");
        // Metadata only: the learner columns stay cold.
        let (counts, means) = batch.lane_columns(0);
        assert!(counts.iter().all(|&n| n == 0));
        assert!(means.iter().all(|&q| q == 0.0));

        let lanes: Vec<Box<dyn SelectionPolicy>> = (0..2)
            .map(|_| Box::new(CmabUcbPolicy::new(5, 2)) as Box<dyn SelectionPolicy>)
            .collect();
        let mut fallback = LanePolicies::new(lanes);
        fallback.set_lane_cells(&[11]);
        assert_eq!(fallback.lane_cell(0), Some(11));
        assert_eq!(fallback.lane_cell(1), None);
    }

    #[test]
    fn observation_batch_lanes_grow_and_persist() {
        let mut stack = ObservationBatch::new();
        stack.ensure_lanes(2);
        assert_eq!(stack.num_lanes(), 2);
        stack
            .lane_mut(1)
            .clone_from(&observations(0, 0, &[SellerId(1)], 3));
        stack.ensure_lanes(1); // never shrinks
        assert_eq!(stack.num_lanes(), 2);
        assert_eq!(stack.lane(1).sellers(), &[SellerId(1)]);
    }
}
