//! Regret accounting (Eq. 34) and the closed-form bound of
//! Lemma 18 / Theorem 19.
//!
//! Following Sec. IV-A, regret is measured against the clairvoyant policy
//! that always selects the true top-K set `S*`, in *expected* quality
//! units: each round contributes `L · (Σ_{i∈S*} q_i − Σ_{i∈S^t} q_i)`
//! (the factor `L` because every selected seller is observed at `L` PoIs,
//! matching the revenue definition of Eq. 1).

use cdt_types::SellerId;
use serde::{Deserialize, Serialize};

/// The reward-gap statistics `Δ_min`, `Δ_max` of Eqs. 35–36.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GapStatistics {
    /// `Δ_min = Σ_{S*} q − max_{S ≠ S*} Σ_S q`: the smallest revenue gap to
    /// a non-optimal set (= the gap between the K-th and (K+1)-th best
    /// seller).
    pub delta_min: f64,
    /// `Δ_max = Σ_{S*} q − min_S Σ_S q`: the largest revenue gap (= top-K
    /// sum minus bottom-K sum).
    pub delta_max: f64,
}

/// Computes `Δ_min`/`Δ_max` from the true expected qualities.
///
/// Returns `None` when `K = M` (only one selectable set exists, so the
/// gaps are undefined and the regret is identically zero) or when the
/// (K+1)-th seller ties the K-th (then `Δ_min = 0` and the logarithmic
/// bound degenerates).
#[must_use]
pub fn gap_statistics(true_qualities: &[f64], k: usize) -> Option<GapStatistics> {
    let m = true_qualities.len();
    if k == 0 || k >= m {
        return None;
    }
    let mut sorted: Vec<f64> = true_qualities.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).expect("qualities are finite"));
    let delta_min = sorted[k - 1] - sorted[k];
    if delta_min <= 0.0 {
        return None;
    }
    let top_k: f64 = sorted[..k].iter().sum();
    let bottom_k: f64 = sorted[m - k..].iter().sum();
    Some(GapStatistics {
        delta_min,
        delta_max: top_k - bottom_k,
    })
}

/// The closed-form expected-regret bound of Theorem 19 (via Lemma 18):
///
/// `Reg ≤ M · Δ_max · ( 4K²(K+1)·ln(NKL)/Δ_min² + 1 + π²/(3·K^{2K+1}·L^{K+2}) )`
///
/// in per-observation quality units, scaled by `L` to match the
/// [`RegretAccountant`]'s revenue units.
///
/// For large `K` the `K^{2K+1}` term overflows to `+∞`, which correctly
/// sends the vanishing tail term to 0.
#[must_use]
pub fn theoretical_regret_bound(
    n: usize,
    m: usize,
    k: usize,
    l: usize,
    gaps: GapStatistics,
) -> f64 {
    let kf = k as f64;
    let lf = l as f64;
    let log_term = (n as f64 * kf * lf).ln().max(0.0);
    let main = 4.0 * kf * kf * (kf + 1.0) * log_term / (gaps.delta_min * gaps.delta_min);
    let tail = std::f64::consts::PI.powi(2) / (3.0 * kf.powf(2.0 * kf + 1.0) * lf.powf(kf + 2.0));
    m as f64 * gaps.delta_max * (main + 1.0 + tail) * lf
}

/// Online regret accumulator for one policy run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegretAccountant {
    true_qualities: Vec<f64>,
    num_pois: usize,
    optimal_per_round: f64,
    cumulative_regret: f64,
    cumulative_expected_revenue: f64,
    rounds: usize,
}

impl RegretAccountant {
    /// Creates an accountant; `k` is the per-round selection size of the
    /// *optimal* reference policy (Eq. 34 compares against `S*` of size
    /// `K` even in the initial all-seller round).
    ///
    /// # Panics
    /// Panics if `k > M`.
    #[must_use]
    pub fn new(true_qualities: Vec<f64>, k: usize, num_pois: usize) -> Self {
        assert!(k <= true_qualities.len());
        let mut sorted = true_qualities.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).expect("qualities are finite"));
        let optimal_per_round = sorted[..k].iter().sum::<f64>() * num_pois as f64;
        Self {
            true_qualities,
            num_pois,
            optimal_per_round,
            cumulative_regret: 0.0,
            cumulative_expected_revenue: 0.0,
            rounds: 0,
        }
    }

    /// Records one round's selection.
    pub fn record(&mut self, selected: &[SellerId]) {
        let selected_sum: f64 = selected
            .iter()
            .map(|id| self.true_qualities[id.index()])
            .sum::<f64>()
            * self.num_pois as f64;
        self.cumulative_expected_revenue += selected_sum;
        // The initial all-seller exploration can out-earn S* in raw revenue
        // (it pulls M > K arms); Eq. 34 regret still counts it against the
        // K-seller optimum, so per-round regret can be negative there.
        self.cumulative_regret += self.optimal_per_round - selected_sum;
        self.rounds += 1;
    }

    /// Cumulative expected regret after all recorded rounds (Eq. 34).
    #[must_use]
    pub fn regret(&self) -> f64 {
        self.cumulative_regret
    }

    /// Cumulative expected revenue `E[R(χ)]` of the recorded policy.
    #[must_use]
    pub fn expected_revenue(&self) -> f64 {
        self.cumulative_expected_revenue
    }

    /// The optimal policy's cumulative expected revenue so far.
    #[must_use]
    pub fn optimal_revenue(&self) -> f64 {
        self.optimal_per_round * self.rounds as f64
    }

    /// Number of recorded rounds.
    #[must_use]
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Per-round optimal expected revenue `L · Σ_{i∈S*} q_i`.
    #[must_use]
    pub fn optimal_per_round(&self) -> f64 {
        self.optimal_per_round
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn gaps_hand_computed() {
        // Sorted desc: [0.9, 0.7, 0.4, 0.2], K = 2.
        let g = gap_statistics(&[0.4, 0.9, 0.2, 0.7], 2).unwrap();
        assert!((g.delta_min - 0.3).abs() < 1e-12); // 0.7 − 0.4
        assert!((g.delta_max - 1.0).abs() < 1e-12); // (0.9+0.7) − (0.4+0.2)
    }

    #[test]
    fn gaps_undefined_for_degenerate_k() {
        assert!(gap_statistics(&[0.1, 0.2], 2).is_none()); // K = M
        assert!(gap_statistics(&[0.1, 0.2], 0).is_none());
        assert!(gap_statistics(&[0.5, 0.5, 0.1], 1).is_none()); // tie at the boundary
    }

    #[test]
    fn regret_zero_for_optimal_selection() {
        let mut acc = RegretAccountant::new(vec![0.9, 0.1, 0.7], 2, 10);
        acc.record(&[SellerId(0), SellerId(2)]);
        acc.record(&[SellerId(2), SellerId(0)]); // order irrelevant
        assert!(acc.regret().abs() < 1e-12);
        assert!((acc.expected_revenue() - acc.optimal_revenue()).abs() < 1e-12);
    }

    #[test]
    fn regret_counts_suboptimal_rounds() {
        let mut acc = RegretAccountant::new(vec![0.9, 0.1, 0.7], 2, 10);
        acc.record(&[SellerId(0), SellerId(1)]); // 0.9+0.1 instead of 0.9+0.7
        assert!((acc.regret() - 6.0).abs() < 1e-12); // (1.6 − 1.0)·10
    }

    #[test]
    fn initial_full_sweep_has_negative_regret() {
        let mut acc = RegretAccountant::new(vec![0.9, 0.1, 0.7], 2, 10);
        acc.record(&[SellerId(0), SellerId(1), SellerId(2)]);
        assert!(acc.regret() < 0.0, "M-seller round out-earns the K-optimum");
    }

    #[test]
    fn bound_grows_logarithmically_in_n() {
        let gaps = GapStatistics {
            delta_min: 0.1,
            delta_max: 1.0,
        };
        let b1 = theoretical_regret_bound(10_000, 300, 10, 10, gaps);
        let b2 = theoretical_regret_bound(100_000, 300, 10, 10, gaps);
        let b3 = theoretical_regret_bound(1_000_000, 300, 10, 10, gaps);
        assert!(b2 > b1 && b3 > b2);
        // Log growth: equal increments for equal N-ratios (the constant and
        // tail terms break exactness only marginally).
        let d1 = b2 - b1;
        let d2 = b3 - b2;
        assert!((d1 - d2).abs() / d1 < 1e-6, "d1={d1} d2={d2}");
    }

    #[test]
    fn bound_survives_large_k_without_nan() {
        let gaps = GapStatistics {
            delta_min: 0.01,
            delta_max: 5.0,
        };
        let b = theoretical_regret_bound(100_000, 300, 60, 10, gaps);
        assert!(b.is_finite() && b > 0.0);
    }

    proptest! {
        /// Regret is never negative once every recorded round selects K
        /// sellers, and revenue + regret = optimal revenue.
        #[test]
        fn regret_revenue_identity(
            qs in proptest::collection::vec(0.01f64..1.0, 4..20),
            seed in 0u64..1000,
        ) {
            use rand::{rngs::StdRng, SeedableRng};
            let k = qs.len() / 2;
            let mut acc = RegretAccountant::new(qs.clone(), k, 5);
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..20 {
                let sel = crate::policy::random_k_subset(qs.len(), k, &mut rng);
                acc.record(&sel);
            }
            prop_assert!(acc.regret() >= -1e-9);
            let identity = acc.expected_revenue() + acc.regret() - acc.optimal_revenue();
            prop_assert!(identity.abs() < 1e-9);
        }

        /// Δ_min ≤ Δ_max whenever both are defined.
        #[test]
        fn delta_min_le_delta_max(
            qs in proptest::collection::vec(0.0f64..1.0, 3..30),
            k_seed in 1usize..10,
        ) {
            let k = 1 + k_seed % (qs.len() - 1);
            if let Some(g) = gap_statistics(&qs, k) {
                prop_assert!(g.delta_min <= g.delta_max + 1e-12);
                prop_assert!(g.delta_min > 0.0);
            }
        }
    }
}
