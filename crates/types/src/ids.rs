//! Strongly-typed identifiers for sellers, PoIs, and trading rounds.
//!
//! Using newtypes instead of bare `usize` prevents the classic index-mixup
//! bugs in code that simultaneously iterates sellers (`i`), PoIs (`l`), and
//! rounds (`t`).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a data seller (`i ∈ M = {0, …, M-1}`).
///
/// The paper indexes sellers from 1; this codebase is zero-based throughout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct SellerId(pub usize);

/// Index of a Point-of-Interest (`l ∈ L = {0, …, L-1}`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct PoiId(pub usize);

/// A trading round (`t ∈ {0, …, N-1}`; the paper's round 1 is our round 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Round(pub usize);

macro_rules! id_impls {
    ($ty:ident, $letter:literal) => {
        impl $ty {
            /// Returns the underlying zero-based index.
            #[must_use]
            pub const fn index(self) -> usize {
                self.0
            }
        }

        impl From<usize> for $ty {
            fn from(v: usize) -> Self {
                Self(v)
            }
        }

        impl From<$ty> for usize {
            fn from(v: $ty) -> usize {
                v.0
            }
        }

        impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", $letter, self.0)
            }
        }
    };
}

id_impls!(SellerId, "s");
id_impls!(PoiId, "poi");
id_impls!(Round, "t");

impl Round {
    /// The first round (the paper's initial-exploration round).
    pub const FIRST: Round = Round(0);

    /// The next round.
    #[must_use]
    pub const fn next(self) -> Round {
        Round(self.0 + 1)
    }

    /// `true` for the initial exploration round (Algorithm 1, steps 2–5).
    #[must_use]
    pub const fn is_initial(self) -> bool {
        self.0 == 0
    }
}

/// Iterator over all seller ids `0..m`.
#[must_use]
pub fn all_sellers(m: usize) -> impl ExactSizeIterator<Item = SellerId> {
    (0..m).map(SellerId)
}

/// Iterator over all PoI ids `0..l`.
#[must_use]
pub fn all_pois(l: usize) -> impl ExactSizeIterator<Item = PoiId> {
    (0..l).map(PoiId)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(SellerId(3).to_string(), "s3");
        assert_eq!(PoiId(7).to_string(), "poi7");
        assert_eq!(Round(0).to_string(), "t0");
    }

    #[test]
    fn round_progression() {
        let r = Round::FIRST;
        assert!(r.is_initial());
        assert!(!r.next().is_initial());
        assert_eq!(r.next().index(), 1);
    }

    #[test]
    fn conversion_round_trips() {
        let s: SellerId = 42usize.into();
        let back: usize = s.into();
        assert_eq!(back, 42);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(SellerId(1) < SellerId(2));
        assert!(Round(9) < Round(10));
    }

    #[test]
    fn iterators_cover_range() {
        let sellers: Vec<_> = all_sellers(3).collect();
        assert_eq!(sellers, vec![SellerId(0), SellerId(1), SellerId(2)]);
        assert_eq!(all_pois(5).len(), 5);
    }

    #[test]
    fn serde_transparent() {
        let json = serde_json::to_string(&SellerId(5)).unwrap();
        assert_eq!(json, "5");
        let s: SellerId = serde_json::from_str("5").unwrap();
        assert_eq!(s, SellerId(5));
    }
}
