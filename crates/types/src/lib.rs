//! # cdt-types
//!
//! Shared domain vocabulary for the CMAB-HS crowdsensing data trading (CDT)
//! system (An et al., ICDE 2021).
//!
//! The crate is deliberately dependency-light: it defines the identifiers,
//! validated parameter sets, price bounds, and error types used by every
//! other crate in the workspace, mirroring the notation of Table I of the
//! paper:
//!
//! | Paper symbol | Type here |
//! |---|---|
//! | `i ∈ M` (seller index) | [`SellerId`] |
//! | `l ∈ L` (PoI index) | [`PoiId`] |
//! | `t ∈ [1, N]` (round index) | [`Round`] |
//! | `a_i, b_i` (seller cost params) | [`SellerCostParams`] |
//! | `θ, λ` (platform cost params) | [`PlatformCostParams`] |
//! | `ω` (consumer valuation param) | [`ValuationParams`] |
//! | `[p_min, p_max]`, `[p^J_min, p^J_max]` | [`PriceBounds`] |
//! | `⟨L, N, T, Des⟩` (job) | [`JobSpec`] |

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod config;
pub mod error;
pub mod ids;
pub mod lanes;
pub mod params;
pub mod seed;

pub use config::{JobSpec, SystemConfig, SystemConfigBuilder};
pub use error::{CdtError, Result};
pub use ids::{PoiId, Round, SellerId};
pub use params::{
    PlatformCostParams, PriceBounds, SellerCostParams, ValuationParams, QUALITY_FLOOR,
};
pub use seed::mix_seed;

/// Numerical tolerance used across the workspace when comparing `f64`
/// quantities that result from closed-form algebra (profits, prices, times).
pub const EPSILON: f64 = 1e-9;

/// A looser tolerance for comparing closed-form results against iterative
/// numeric maximizers (golden-section search terminates at ~1e-7 precision).
pub const NUMERIC_TOLERANCE: f64 = 1e-4;

/// Returns `true` when two floats agree within an absolute tolerance `tol`
/// *or* a relative tolerance `tol` (whichever is more permissive). This is
/// the comparison used by equilibrium cross-validation tests.
#[must_use]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    let diff = (a - b).abs();
    if diff <= tol {
        return true;
    }
    let scale = a.abs().max(b.abs());
    diff <= tol * scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_absolute() {
        assert!(approx_eq(1.0, 1.0 + 1e-10, 1e-9));
        assert!(!approx_eq(1.0, 1.1, 1e-9));
    }

    #[test]
    fn approx_eq_relative_for_large_values() {
        // 1e12 vs 1e12 + 1 differ by 1 absolutely but 1e-12 relatively.
        assert!(approx_eq(1e12, 1e12 + 1.0, 1e-9));
    }

    #[test]
    fn approx_eq_zero_vs_tiny() {
        assert!(approx_eq(0.0, 1e-12, 1e-9));
        assert!(!approx_eq(0.0, 1e-3, 1e-9));
    }
}
