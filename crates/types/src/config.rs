//! Whole-system configuration: the consumer's job spec and the per-party
//! economic parameters, validated together.

use crate::error::{CdtError, Result};
use crate::ids::SellerId;
use crate::params::{PlatformCostParams, PriceBounds, SellerCostParams, ValuationParams};
use serde::{Deserialize, Serialize};

/// The consumer's long-term data collection job `Job = ⟨L, N, T, Des⟩`
/// (Def. 1). `Des` (free-text requirements) is represented as `description`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Number of PoIs `L`.
    pub num_pois: usize,
    /// Number of rounds `N`.
    pub num_rounds: usize,
    /// Duration of one round `T` — the upper bound on any seller's sensing
    /// time `τ_i^t ∈ [0, T]`.
    pub round_duration: f64,
    /// Free-text requirements for collected data and statistics (`Des`).
    pub description: String,
}

impl JobSpec {
    /// Creates a validated job spec.
    ///
    /// # Errors
    /// Returns an error when `L == 0`, `N == 0`, or `T ≤ 0`.
    pub fn new(num_pois: usize, num_rounds: usize, round_duration: f64) -> Result<Self> {
        if num_pois == 0 {
            return Err(CdtError::config("job requires at least one PoI (L >= 1)"));
        }
        if num_rounds == 0 {
            return Err(CdtError::config("job requires at least one round (N >= 1)"));
        }
        if !(round_duration.is_finite() && round_duration > 0.0) {
            return Err(CdtError::invalid(
                "T",
                round_duration,
                "round duration must be finite and > 0",
            ));
        }
        Ok(Self {
            num_pois,
            num_rounds,
            round_duration,
            description: String::new(),
        })
    }

    /// Attaches a human-readable description (`Des`).
    #[must_use]
    pub fn with_description(mut self, description: impl Into<String>) -> Self {
        self.description = description.into();
        self
    }
}

/// Full validated configuration of a CDT system instance.
///
/// Built via [`SystemConfigBuilder`]; the builder enforces the cross-field
/// invariants (`K ≤ M`, one cost-parameter pair per seller).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// The consumer's job.
    pub job: JobSpec,
    /// Number of candidate sellers `M`.
    pub num_sellers: usize,
    /// Number of sellers selected each round `K`.
    pub selection_size: usize,
    /// Per-seller cost parameters `(a_i, b_i)`, indexed by [`SellerId`].
    pub seller_costs: Vec<SellerCostParams>,
    /// Platform aggregation cost parameters `(θ, λ)`.
    pub platform_cost: PlatformCostParams,
    /// Consumer valuation parameter `ω`.
    pub valuation: ValuationParams,
    /// Bounds on the platform's unit data-collection price `p`.
    pub collection_price_bounds: PriceBounds,
    /// Bounds on the consumer's unit data-service price `p^J`.
    pub service_price_bounds: PriceBounds,
    /// Sensing time `τ⁰` each seller contributes in the initial exploration
    /// round (Algorithm 1, step 3).
    pub initial_sensing_time: f64,
}

impl SystemConfig {
    /// Starts a builder.
    #[must_use]
    pub fn builder() -> SystemConfigBuilder {
        SystemConfigBuilder::default()
    }

    /// Cost parameters for one seller.
    ///
    /// # Panics
    /// Panics if `id` is out of range; configs are validated to hold exactly
    /// `M` entries, so an out-of-range id is a logic error.
    #[must_use]
    pub fn seller_cost(&self, id: SellerId) -> SellerCostParams {
        self.seller_costs[id.index()]
    }

    /// Shorthand accessors matching the paper's symbols.
    #[must_use]
    pub fn m(&self) -> usize {
        self.num_sellers
    }

    /// `K`, the per-round selection size.
    #[must_use]
    pub fn k(&self) -> usize {
        self.selection_size
    }

    /// `L`, the number of PoIs.
    #[must_use]
    pub fn l(&self) -> usize {
        self.job.num_pois
    }

    /// `N`, the number of rounds.
    #[must_use]
    pub fn n(&self) -> usize {
        self.job.num_rounds
    }
}

/// Builder for [`SystemConfig`] with paper-default economic parameters.
#[derive(Debug, Clone)]
pub struct SystemConfigBuilder {
    job: Option<JobSpec>,
    num_sellers: usize,
    selection_size: usize,
    seller_costs: Vec<SellerCostParams>,
    platform_cost: PlatformCostParams,
    valuation: ValuationParams,
    collection_price_bounds: PriceBounds,
    service_price_bounds: PriceBounds,
    initial_sensing_time: f64,
}

impl Default for SystemConfigBuilder {
    fn default() -> Self {
        Self {
            job: None,
            num_sellers: 0,
            selection_size: 0,
            seller_costs: Vec::new(),
            // Paper defaults (Sec. V-A): θ = 0.1, λ = 1, ω = 1000.
            platform_cost: PlatformCostParams {
                theta: 0.1,
                lambda: 1.0,
            },
            valuation: ValuationParams { omega: 1000.0 },
            collection_price_bounds: PriceBounds {
                min: 0.0,
                max: f64::MAX,
            },
            service_price_bounds: PriceBounds {
                min: 0.0,
                max: f64::MAX,
            },
            initial_sensing_time: 1.0,
        }
    }
}

impl SystemConfigBuilder {
    /// Sets the job spec (required).
    #[must_use]
    pub fn job(mut self, job: JobSpec) -> Self {
        self.job = Some(job);
        self
    }

    /// Sets `M` and `K` (required).
    #[must_use]
    pub fn sellers(mut self, num_sellers: usize, selection_size: usize) -> Self {
        self.num_sellers = num_sellers;
        self.selection_size = selection_size;
        self
    }

    /// Provides the per-seller cost parameters (must have length `M`).
    #[must_use]
    pub fn seller_costs(mut self, costs: Vec<SellerCostParams>) -> Self {
        self.seller_costs = costs;
        self
    }

    /// Sets the platform cost parameters `(θ, λ)`.
    #[must_use]
    pub fn platform_cost(mut self, cost: PlatformCostParams) -> Self {
        self.platform_cost = cost;
        self
    }

    /// Sets the consumer valuation parameter `ω`.
    #[must_use]
    pub fn valuation(mut self, valuation: ValuationParams) -> Self {
        self.valuation = valuation;
        self
    }

    /// Sets the bounds for the platform's collection price `p`.
    #[must_use]
    pub fn collection_price_bounds(mut self, bounds: PriceBounds) -> Self {
        self.collection_price_bounds = bounds;
        self
    }

    /// Sets the bounds for the consumer's service price `p^J`.
    #[must_use]
    pub fn service_price_bounds(mut self, bounds: PriceBounds) -> Self {
        self.service_price_bounds = bounds;
        self
    }

    /// Sets the initial-exploration sensing time `τ⁰`.
    #[must_use]
    pub fn initial_sensing_time(mut self, tau0: f64) -> Self {
        self.initial_sensing_time = tau0;
        self
    }

    /// Validates and builds the [`SystemConfig`].
    ///
    /// # Errors
    /// Returns an error when required fields are missing, `K > M` or `K == 0`,
    /// the cost vector length differs from `M`, or `τ⁰` is outside `(0, T]`.
    pub fn build(self) -> Result<SystemConfig> {
        let job = self
            .job
            .ok_or_else(|| CdtError::config("job spec is required"))?;
        if self.num_sellers == 0 {
            return Err(CdtError::config("at least one seller is required (M >= 1)"));
        }
        if self.selection_size == 0 {
            return Err(CdtError::config("selection size K must be >= 1"));
        }
        if self.selection_size > self.num_sellers {
            return Err(CdtError::SelectionTooLarge {
                k: self.selection_size,
                m: self.num_sellers,
            });
        }
        if self.seller_costs.len() != self.num_sellers {
            return Err(CdtError::config(format!(
                "expected {} seller cost entries, got {}",
                self.num_sellers,
                self.seller_costs.len()
            )));
        }
        if !(self.initial_sensing_time > 0.0
            && self.initial_sensing_time <= job.round_duration
            && self.initial_sensing_time.is_finite())
        {
            return Err(CdtError::invalid(
                "tau0",
                self.initial_sensing_time,
                "initial sensing time must lie in (0, T]",
            ));
        }
        Ok(SystemConfig {
            job,
            num_sellers: self.num_sellers,
            selection_size: self.selection_size,
            seller_costs: self.seller_costs,
            platform_cost: self.platform_cost,
            valuation: self.valuation,
            collection_price_bounds: self.collection_price_bounds,
            service_price_bounds: self.service_price_bounds,
            initial_sensing_time: self.initial_sensing_time,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn costs(m: usize) -> Vec<SellerCostParams> {
        (0..m)
            .map(|i| SellerCostParams::new(0.1 + 0.01 * i as f64, 0.2).unwrap())
            .collect()
    }

    #[test]
    fn builder_happy_path() {
        let cfg = SystemConfig::builder()
            .job(JobSpec::new(10, 100, 50.0).unwrap())
            .sellers(5, 2)
            .seller_costs(costs(5))
            .build()
            .unwrap();
        assert_eq!(cfg.m(), 5);
        assert_eq!(cfg.k(), 2);
        assert_eq!(cfg.l(), 10);
        assert_eq!(cfg.n(), 100);
        assert!((cfg.seller_cost(SellerId(2)).a - 0.12).abs() < 1e-12);
    }

    #[test]
    fn builder_rejects_k_greater_than_m() {
        let err = SystemConfig::builder()
            .job(JobSpec::new(10, 100, 50.0).unwrap())
            .sellers(3, 5)
            .seller_costs(costs(3))
            .build()
            .unwrap_err();
        assert!(matches!(err, CdtError::SelectionTooLarge { k: 5, m: 3 }));
    }

    #[test]
    fn builder_rejects_wrong_cost_count() {
        assert!(SystemConfig::builder()
            .job(JobSpec::new(10, 100, 50.0).unwrap())
            .sellers(4, 2)
            .seller_costs(costs(3))
            .build()
            .is_err());
    }

    #[test]
    fn builder_rejects_missing_job() {
        assert!(SystemConfig::builder()
            .sellers(4, 2)
            .seller_costs(costs(4))
            .build()
            .is_err());
    }

    #[test]
    fn builder_rejects_zero_k() {
        assert!(SystemConfig::builder()
            .job(JobSpec::new(10, 100, 50.0).unwrap())
            .sellers(4, 0)
            .seller_costs(costs(4))
            .build()
            .is_err());
    }

    #[test]
    fn builder_rejects_tau0_above_round_duration() {
        assert!(SystemConfig::builder()
            .job(JobSpec::new(10, 100, 0.5).unwrap())
            .sellers(4, 2)
            .seller_costs(costs(4))
            .initial_sensing_time(1.0)
            .build()
            .is_err());
    }

    #[test]
    fn job_spec_validation() {
        assert!(JobSpec::new(0, 10, 1.0).is_err());
        assert!(JobSpec::new(10, 0, 1.0).is_err());
        assert!(JobSpec::new(10, 10, 0.0).is_err());
        assert!(JobSpec::new(10, 10, -1.0).is_err());
        let j = JobSpec::new(10, 10, 1.0)
            .unwrap()
            .with_description("air quality");
        assert_eq!(j.description, "air quality");
    }

    #[test]
    fn config_serde_round_trip() {
        // Exactly-representable binary fractions so JSON round-trips bit-for-bit.
        let exact: Vec<SellerCostParams> = [0.5, 0.25, 0.125]
            .iter()
            .map(|&a| SellerCostParams::new(a, 0.5).unwrap())
            .collect();
        let cfg = SystemConfig::builder()
            .job(JobSpec::new(4, 10, 10.0).unwrap())
            .sellers(3, 2)
            .seller_costs(exact)
            .build()
            .unwrap();
        let json = serde_json::to_string(&cfg).unwrap();
        let back: SystemConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }
}
