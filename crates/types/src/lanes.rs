//! Lane-kernel configuration and reduction helpers.
//!
//! The batched replication engine lays estimator counts/means, observation
//! rows, and game-context columns out as flat arrays precisely so the inner
//! column kernels can vectorize. This module is the zero-dependency layer
//! those kernels share:
//!
//! - a process-wide **lane width** (`1 | 2 | 4 | 8`) selecting how many
//!   accumulator lanes the chunked kernels unroll over — the shape the
//!   autovectorizer lowers to SIMD;
//! - a process-wide **fast-math** switch (off by default) gating every
//!   transformation that *reassociates* floating-point reductions;
//! - the reassociating sum kernels themselves.
//!
//! ### Determinism contract
//!
//! Elementwise kernels (UCB index fill, best-response fill) compute one
//! output per input with an unchanged expression tree; chunking them by any
//! lane width is bit-identical to the scalar loop, so they vectorize at the
//! configured width *unconditionally*.
//!
//! Reductions (row sums, fused aggregate accumulators) are different: a
//! `W`-lane partial-sum rewrite reorders the additions, which IEEE-754
//! addition does not forgive. The default path therefore keeps every
//! reduction strictly sequential (bit-identical to the serial reference at
//! every batch × chunk × thread × lane-width combination), and the
//! reassociated variants run only when [`fast_math`] is on.
//!
//! Fast-math is still *deterministic*: for a fixed lane width and input,
//! [`sum_reassociated`] always produces the same bits regardless of thread
//! count, chunk size, or batch width — it diverges from the sequential sum,
//! but reproducibly so. The divergence is the classic reassociation bound
//! `|fast − seq| ≤ (n−1) · ε · Σ|xᵢ|` (ε = unit roundoff, `n` = slice
//! length); `cdt journal diff` is the acceptance tool that measures the
//! realized end-to-end drift.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// The default lane width used when no override or environment variable
/// selects one: wide enough for one AVX-512 / two AVX2 `f64` vectors.
pub const DEFAULT_LANE_WIDTH: usize = 8;

/// Lane widths the chunked kernels are compiled for. `1` is the scalar
/// reference shape; `2`/`4`/`8` map to 128/256/512-bit `f64` vectors.
pub const SUPPORTED_LANE_WIDTHS: [usize; 4] = [1, 2, 4, 8];

/// `true` when `width` is one of [`SUPPORTED_LANE_WIDTHS`].
#[must_use]
pub fn is_supported_lane_width(width: usize) -> bool {
    SUPPORTED_LANE_WIDTHS.contains(&width)
}

/// Process-wide lane width; 0 means "not set" ([`DEFAULT_LANE_WIDTH`]).
static LANE_WIDTH: AtomicUsize = AtomicUsize::new(0);

/// Process-wide fast-math switch; reassociating kernels are off by default.
static FAST_MATH: AtomicBool = AtomicBool::new(false);

/// Sets the process-wide lane width (`Some(w)` with `w` in
/// [`SUPPORTED_LANE_WIDTHS`]), or clears it (`None`) so [`lane_width`]
/// falls back to [`DEFAULT_LANE_WIDTH`].
///
/// # Panics
/// Panics on an unsupported width.
pub fn set_lane_width(width: Option<usize>) {
    if let Some(w) = width {
        assert!(
            is_supported_lane_width(w),
            "lane width must be one of {SUPPORTED_LANE_WIDTHS:?}, got {w}"
        );
        LANE_WIDTH.store(w, Ordering::Relaxed);
    } else {
        LANE_WIDTH.store(0, Ordering::Relaxed);
    }
}

/// The lane width the chunked kernels run at (set > default).
#[must_use]
pub fn lane_width() -> usize {
    match LANE_WIDTH.load(Ordering::Relaxed) {
        0 => DEFAULT_LANE_WIDTH,
        w => w,
    }
}

/// Turns the process-wide fast-math mode on or off. Off (the default)
/// keeps every floating-point reduction sequential and bit-identical to
/// the serial reference; on enables the reassociated lane sums.
pub fn set_fast_math(on: bool) {
    FAST_MATH.store(on, Ordering::Relaxed);
}

/// `true` while reassociating (fast-math) reductions are enabled.
#[must_use]
pub fn fast_math() -> bool {
    FAST_MATH.load(Ordering::Relaxed)
}

/// The strictly sequential left-to-right sum — the bit-identity reference
/// every reassociated variant is measured against.
#[must_use]
pub fn sum_sequential(xs: &[f64]) -> f64 {
    xs.iter().sum()
}

/// A `W`-lane reassociated sum: lane `j` accumulates elements
/// `j, j+W, j+2W, …` of the full chunks, the tail (`len % W` elements) is
/// summed sequentially first, and the lane accumulators are folded in lane
/// order on top. Deterministic for a fixed `(W, input)` pair.
///
/// Slices shorter than `W` have no full chunk, so the "tail" is the whole
/// slice and the lane accumulators stay zero: the result degrades to
/// exactly [`sum_sequential`]. Divergence from the sequential sum can only
/// appear once `xs.len() >= W` — at least one element ends up on a lane
/// accumulator while the fold order differs.
#[must_use]
pub fn sum_reassociated<const W: usize>(xs: &[f64]) -> f64 {
    let mut acc = [0.0f64; W];
    let chunks = xs.chunks_exact(W);
    let tail = chunks.remainder();
    for chunk in chunks {
        for (lane, &x) in acc.iter_mut().zip(chunk) {
            *lane += x;
        }
    }
    let mut total = sum_sequential(tail);
    for lane in acc {
        total += lane;
    }
    total
}

/// Dispatches [`sum_reassociated`] at a runtime `width`; width 1 (or any
/// unsupported value) is the sequential sum.
#[must_use]
pub fn sum_reassociated_width(xs: &[f64], width: usize) -> f64 {
    match width {
        2 => sum_reassociated::<2>(xs),
        4 => sum_reassociated::<4>(xs),
        8 => sum_reassociated::<8>(xs),
        _ => sum_sequential(xs),
    }
}

/// The sum the current process configuration selects: the reassociated
/// [`lane_width`]-lane sum under [`fast_math`], the sequential reference
/// otherwise. This is the single entry point hot-loop reductions route
/// through.
#[must_use]
pub fn configured_sum(xs: &[f64]) -> f64 {
    if fast_math() {
        sum_reassociated_width(xs, lane_width())
    } else {
        sum_sequential(xs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Lane width / fast-math are process-global; every test that mutates
    /// them serializes here and restores the defaults before releasing.
    static CONFIG_LOCK: Mutex<()> = Mutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        CONFIG_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn supported_widths_are_recognized() {
        for w in SUPPORTED_LANE_WIDTHS {
            assert!(is_supported_lane_width(w));
        }
        for w in [0usize, 3, 5, 16] {
            assert!(!is_supported_lane_width(w));
        }
    }

    #[test]
    fn lane_width_set_and_clear() {
        let _guard = lock();
        assert_eq!(lane_width(), DEFAULT_LANE_WIDTH);
        set_lane_width(Some(4));
        assert_eq!(lane_width(), 4);
        set_lane_width(None);
        assert_eq!(lane_width(), DEFAULT_LANE_WIDTH);
    }

    #[test]
    #[should_panic(expected = "lane width must be one of")]
    fn rejects_unsupported_width() {
        set_lane_width(Some(3));
    }

    #[test]
    fn fast_math_toggles() {
        let _guard = lock();
        assert!(!fast_math(), "fast-math must be off by default");
        set_fast_math(true);
        assert!(fast_math());
        set_fast_math(false);
        assert!(!fast_math());
    }

    #[test]
    fn short_slices_degrade_to_sequential_bits() {
        // len < W ⇒ no full chunk ⇒ exactly the sequential sum.
        let xs = [0.1, 0.2, 0.3];
        assert_eq!(
            sum_reassociated::<4>(&xs).to_bits(),
            sum_sequential(&xs).to_bits()
        );
        assert_eq!(
            sum_reassociated::<8>(&xs).to_bits(),
            sum_sequential(&xs).to_bits()
        );
    }

    #[test]
    fn reassociated_sum_is_close_to_sequential() {
        let xs: Vec<f64> = (0..103).map(|i| 0.01 + (i as f64) * 0.37).collect();
        let seq = sum_sequential(&xs);
        for w in [2usize, 4, 8] {
            let fast = sum_reassociated_width(&xs, w);
            let abs_sum: f64 = xs.iter().map(|x| x.abs()).sum();
            let bound = (xs.len() as f64) * f64::EPSILON * abs_sum;
            assert!(
                (fast - seq).abs() <= bound,
                "width {w}: |{fast} - {seq}| > {bound}"
            );
        }
    }

    #[test]
    fn reassociated_sum_is_deterministic_per_width() {
        let xs: Vec<f64> = (0..57).map(|i| 1.0 / (1.0 + i as f64)).collect();
        for w in [2usize, 4, 8] {
            let a = sum_reassociated_width(&xs, w);
            let b = sum_reassociated_width(&xs, w);
            assert_eq!(a.to_bits(), b.to_bits(), "width {w}");
        }
    }

    #[test]
    fn configured_sum_is_sequential_by_default() {
        let _guard = lock();
        let xs: Vec<f64> = (0..29).map(|i| (i as f64).sin()).collect();
        assert_eq!(configured_sum(&xs).to_bits(), sum_sequential(&xs).to_bits());
        set_fast_math(true);
        set_lane_width(Some(4));
        assert_eq!(
            configured_sum(&xs).to_bits(),
            sum_reassociated::<4>(&xs).to_bits()
        );
        set_fast_math(false);
        set_lane_width(None);
    }

    #[test]
    fn width_one_dispatch_is_sequential() {
        let xs = [0.5, 0.25, 0.125, 0.375, 0.625];
        assert_eq!(
            sum_reassociated_width(&xs, 1).to_bits(),
            sum_sequential(&xs).to_bits()
        );
    }
}
