//! Error types shared across the CMAB-HS workspace.

use std::fmt;

/// Convenient result alias used across the workspace.
pub type Result<T> = std::result::Result<T, CdtError>;

/// Errors raised by the CDT system.
///
/// The variants are deliberately descriptive: every invalid-parameter path
/// names the offending parameter and its value so that configuration bugs in
/// experiments surface immediately rather than as NaNs deep in the game
/// algebra.
#[derive(Debug, Clone, PartialEq)]
pub enum CdtError {
    /// A numeric parameter violated its documented domain
    /// (e.g. `a_i <= 0`, `θ <= 0`, `ω <= 1`).
    InvalidParameter {
        /// Name of the parameter, matching the paper's notation.
        name: &'static str,
        /// The offending value.
        value: f64,
        /// Human-readable constraint, e.g. `"must be > 0"`.
        constraint: &'static str,
    },
    /// A structural configuration error (counts, set sizes).
    InvalidConfig {
        /// Description of the violated structural requirement.
        message: String,
    },
    /// `K > M`: cannot select more sellers than exist.
    SelectionTooLarge {
        /// Requested selection size `K`.
        k: usize,
        /// Available sellers `M`.
        m: usize,
    },
    /// A price bound interval is empty (`min > max`).
    EmptyPriceRange {
        /// Lower bound of the interval.
        min: f64,
        /// Upper bound of the interval.
        max: f64,
    },
    /// The Stackelberg game received an empty selected-seller set.
    EmptySelection,
    /// A quality observation fell outside `[0, 1]`.
    QualityOutOfRange {
        /// The offending value.
        value: f64,
    },
    /// The mechanism was asked to run past its configured horizon.
    HorizonExhausted {
        /// The configured total number of rounds `N`.
        n: usize,
    },
    /// Parsing a serialized trace record failed.
    TraceParse {
        /// Line number (1-based) in the input.
        line: usize,
        /// Description of the parse failure.
        message: String,
    },
}

impl fmt::Display for CdtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CdtError::InvalidParameter {
                name,
                value,
                constraint,
            } => write!(f, "invalid parameter {name} = {value}: {constraint}"),
            CdtError::InvalidConfig { message } => write!(f, "invalid configuration: {message}"),
            CdtError::SelectionTooLarge { k, m } => {
                write!(f, "cannot select K={k} sellers out of M={m}")
            }
            CdtError::EmptyPriceRange { min, max } => {
                write!(f, "empty price range [{min}, {max}]")
            }
            CdtError::EmptySelection => write!(f, "Stackelberg game requires >= 1 selected seller"),
            CdtError::QualityOutOfRange { value } => {
                write!(f, "quality observation {value} outside [0, 1]")
            }
            CdtError::HorizonExhausted { n } => {
                write!(f, "data collection job already ran its N={n} rounds")
            }
            CdtError::TraceParse { line, message } => {
                write!(f, "trace parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for CdtError {}

impl CdtError {
    /// Helper constructing an [`CdtError::InvalidParameter`].
    #[must_use]
    pub fn invalid(name: &'static str, value: f64, constraint: &'static str) -> Self {
        CdtError::InvalidParameter {
            name,
            value,
            constraint,
        }
    }

    /// Helper constructing an [`CdtError::InvalidConfig`].
    #[must_use]
    pub fn config(message: impl Into<String>) -> Self {
        CdtError::InvalidConfig {
            message: message.into(),
        }
    }
}

/// Validates that `value` is finite and strictly positive.
pub fn require_positive(name: &'static str, value: f64) -> Result<f64> {
    if value.is_finite() && value > 0.0 {
        Ok(value)
    } else {
        Err(CdtError::invalid(name, value, "must be finite and > 0"))
    }
}

/// Validates that `value` is finite and non-negative.
pub fn require_non_negative(name: &'static str, value: f64) -> Result<f64> {
    if value.is_finite() && value >= 0.0 {
        Ok(value)
    } else {
        Err(CdtError::invalid(name, value, "must be finite and >= 0"))
    }
}

/// Validates that `value` lies in `[0, 1]` (quality domain).
pub fn require_unit_interval(name: &'static str, value: f64) -> Result<f64> {
    if value.is_finite() && (0.0..=1.0).contains(&value) {
        Ok(value)
    } else {
        Err(CdtError::invalid(name, value, "must lie in [0, 1]"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_name_the_parameter() {
        let e = CdtError::invalid("a_i", -1.0, "must be > 0");
        assert!(e.to_string().contains("a_i"));
        assert!(e.to_string().contains("-1"));
    }

    #[test]
    fn require_positive_accepts_and_rejects() {
        assert_eq!(require_positive("x", 0.5).unwrap(), 0.5);
        assert!(require_positive("x", 0.0).is_err());
        assert!(require_positive("x", -3.0).is_err());
        assert!(require_positive("x", f64::NAN).is_err());
        assert!(require_positive("x", f64::INFINITY).is_err());
    }

    #[test]
    fn require_non_negative_accepts_zero() {
        assert_eq!(require_non_negative("b", 0.0).unwrap(), 0.0);
        assert!(require_non_negative("b", -0.1).is_err());
    }

    #[test]
    fn require_unit_interval_bounds() {
        assert!(require_unit_interval("q", 0.0).is_ok());
        assert!(require_unit_interval("q", 1.0).is_ok());
        assert!(require_unit_interval("q", 1.0001).is_err());
        assert!(require_unit_interval("q", -0.0001).is_err());
        assert!(require_unit_interval("q", f64::NAN).is_err());
    }

    #[test]
    fn selection_too_large_display() {
        let e = CdtError::SelectionTooLarge { k: 20, m: 10 };
        assert_eq!(e.to_string(), "cannot select K=20 sellers out of M=10");
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&CdtError::EmptySelection);
    }
}
