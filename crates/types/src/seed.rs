//! Seed derivation for independent RNG streams.
//!
//! Experiment harnesses need many statistically independent `u64` seeds
//! derived from one master seed: one per (replication, policy) cell, one
//! per sweep point, and so on. Additive schemes such as
//! `base + rep * 7919` or `base + i + 1` are collision-prone — two
//! different (base, stream) pairs can land on the same seed, silently
//! correlating runs that must be independent.
//!
//! [`mix_seed`] avoids this by pushing `base` and `stream` through the
//! SplitMix64 finalizer (Steele, Lea & Flood, OOPSLA 2014), the standard
//! avalanche mix used to seed PRNG families. Every input bit affects every
//! output bit with probability ≈ 1/2, so nearby (base, stream) pairs map
//! to unrelated seeds.

/// The SplitMix64 finalizer: a full-avalanche bijection on `u64`.
#[must_use]
const fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the seed of independent stream `stream` from a master seed.
///
/// Deterministic, collision-resistant (the composition of two SplitMix64
/// steps, keyed on both inputs), and cheap enough to call per job. Use it
/// wherever one master seed must fan out into per-job RNG streams:
///
/// ```
/// use cdt_types::mix_seed;
/// let base = 20_210_419;
/// let scenario_seed = mix_seed(base, 0);
/// let run_seed = mix_seed(scenario_seed, 1);
/// assert_ne!(scenario_seed, run_seed);
/// // Deterministic: the same (base, stream) always maps to the same seed.
/// assert_eq!(mix_seed(base, 0), scenario_seed);
/// ```
#[must_use]
pub const fn mix_seed(base: u64, stream: u64) -> u64 {
    // Mix the base first so that `stream` offsets of different bases never
    // align, then fold the stream in through a second avalanche pass.
    splitmix64(splitmix64(base).wrapping_add(splitmix64(stream ^ 0xA076_1D64_78BD_642F)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic() {
        assert_eq!(mix_seed(42, 7), mix_seed(42, 7));
    }

    #[test]
    fn distinct_streams_distinct_seeds() {
        let mut seen = HashSet::new();
        for stream in 0..10_000u64 {
            assert!(seen.insert(mix_seed(123, stream)), "collision at {stream}");
        }
    }

    #[test]
    fn distinct_bases_distinct_seeds() {
        let mut seen = HashSet::new();
        for base in 0..10_000u64 {
            assert!(seen.insert(mix_seed(base, 5)), "collision at {base}");
        }
    }

    #[test]
    fn additive_scheme_collisions_are_avoided() {
        // The old scheme collides: base + rep*7919 == (base + i + 1) when
        // rep*7919 == i + 1. mix_seed keeps the two grids disjoint.
        let base = 99u64;
        let scenario_seeds: HashSet<u64> = (0..100).map(|rep| mix_seed(base, rep)).collect();
        let run_seeds: HashSet<u64> = (0..100)
            .flat_map(|rep| (0..8).map(move |i| mix_seed(mix_seed(base, rep), i + 1)))
            .collect();
        assert!(scenario_seeds.is_disjoint(&run_seeds));
        assert_eq!(run_seeds.len(), 800);
    }

    #[test]
    fn avalanche_on_single_bit_flip() {
        // Flipping one input bit flips roughly half the output bits.
        let a = mix_seed(0, 0);
        let b = mix_seed(1, 0);
        let flipped = (a ^ b).count_ones();
        assert!(
            (16..=48).contains(&flipped),
            "weak avalanche: {flipped} bits"
        );
    }
}
