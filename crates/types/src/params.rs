//! Validated parameter sets for the three trading parties.
//!
//! All constructors validate the domains the paper's theorems rely on:
//! strict convexity of costs (`a_i > 0`, `θ > 0`) and strict concavity with
//! positive marginal value of the consumer valuation (`ω > 1`).

use crate::error::{require_non_negative, require_positive, CdtError, Result};
use serde::{Deserialize, Serialize};

/// The smallest estimated quality admitted into Stage-3 denominators.
///
/// Theorem 14's best response `τ_i* = (p − q̄_i b_i) / (2 q̄_i a_i)` divides by
/// the estimated quality; a seller whose observed qualities are all ~0 would
/// otherwise produce an unbounded sensing time. The floor is far below any
/// quality the paper's truncated-Gaussian observation model produces in
/// practice, so it never distorts the reproduced experiments.
pub const QUALITY_FLOOR: f64 = 1e-3;

/// Seller `i`'s quadratic data-collection cost parameters (Eq. 6):
/// `C_i(τ, q̄) = (a_i τ² + b_i τ) · q̄`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SellerCostParams {
    /// Quadratic coefficient `a_i > 0` (increasing marginal cost).
    pub a: f64,
    /// Linear coefficient `b_i ≥ 0`.
    pub b: f64,
}

impl SellerCostParams {
    /// Creates a validated parameter pair.
    ///
    /// # Errors
    /// Returns [`CdtError::InvalidParameter`] unless `a > 0` and `b ≥ 0`.
    pub fn new(a: f64, b: f64) -> Result<Self> {
        Ok(Self {
            a: require_positive("a_i", a)?,
            b: require_non_negative("b_i", b)?,
        })
    }

    /// Evaluates the cost `C_i(τ, q̄)` of Eq. 6.
    #[must_use]
    pub fn cost(&self, sensing_time: f64, quality: f64) -> f64 {
        (self.a * sensing_time * sensing_time + self.b * sensing_time) * quality
    }
}

/// The platform's quadratic data-aggregation cost parameters (Eq. 8):
/// `C^J(τ) = θ (Σ τ_i)² + λ Σ τ_i`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlatformCostParams {
    /// Quadratic coefficient `θ > 0`.
    pub theta: f64,
    /// Linear coefficient `λ ≥ 0`.
    pub lambda: f64,
}

impl PlatformCostParams {
    /// Creates a validated parameter pair.
    ///
    /// # Errors
    /// Returns [`CdtError::InvalidParameter`] unless `θ > 0` and `λ ≥ 0`.
    pub fn new(theta: f64, lambda: f64) -> Result<Self> {
        Ok(Self {
            theta: require_positive("theta", theta)?,
            lambda: require_non_negative("lambda", lambda)?,
        })
    }

    /// Evaluates the aggregation cost `C^J` of Eq. 8 for a total sensing
    /// time `Σ τ_i` contributed by the selected sellers.
    #[must_use]
    pub fn cost(&self, total_sensing_time: f64) -> f64 {
        self.theta * total_sensing_time * total_sensing_time + self.lambda * total_sensing_time
    }
}

/// The consumer's logarithmic valuation parameter (Eq. 10):
/// `φ(τ, q̄) = ω · ln(1 + q̄ Σ τ_i)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ValuationParams {
    /// System parameter `ω > 1` (diminishing marginal returns scale).
    pub omega: f64,
}

impl ValuationParams {
    /// Creates a validated valuation parameter.
    ///
    /// # Errors
    /// Returns [`CdtError::InvalidParameter`] unless `ω > 1`.
    pub fn new(omega: f64) -> Result<Self> {
        if omega.is_finite() && omega > 1.0 {
            Ok(Self { omega })
        } else {
            Err(CdtError::invalid("omega", omega, "must be finite and > 1"))
        }
    }

    /// Evaluates the valuation `φ` of Eq. 10 for a mean quality and a
    /// total sensing time.
    #[must_use]
    pub fn valuation(&self, mean_quality: f64, total_sensing_time: f64) -> f64 {
        self.omega * (1.0 + mean_quality * total_sensing_time).ln()
    }
}

/// A closed price interval `[min, max]` used to clamp a party's strategy
/// (Def. 5: `p^J ∈ [p^J_min, p^J_max]`, `p ∈ [p_min, p_max]`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PriceBounds {
    /// Lower bound.
    pub min: f64,
    /// Upper bound.
    pub max: f64,
}

impl PriceBounds {
    /// Creates a validated interval.
    ///
    /// # Errors
    /// Returns [`CdtError::EmptyPriceRange`] if `min > max`, and
    /// [`CdtError::InvalidParameter`] when a bound is negative or non-finite.
    pub fn new(min: f64, max: f64) -> Result<Self> {
        let min = require_non_negative("price.min", min)?;
        let max = require_non_negative("price.max", max)?;
        if min > max {
            return Err(CdtError::EmptyPriceRange { min, max });
        }
        Ok(Self { min, max })
    }

    /// An effectively-unbounded interval, useful in theory-checking tests
    /// where the paper's interior optimum must not be clipped.
    #[must_use]
    pub fn unbounded() -> Self {
        Self {
            min: 0.0,
            max: f64::MAX,
        }
    }

    /// Clamps `p` into the interval.
    #[must_use]
    pub fn clamp(&self, p: f64) -> f64 {
        p.clamp(self.min, self.max)
    }

    /// `true` iff `p` lies inside the interval.
    #[must_use]
    pub fn contains(&self, p: f64) -> bool {
        (self.min..=self.max).contains(&p)
    }

    /// Width of the interval.
    #[must_use]
    pub fn width(&self) -> f64 {
        self.max - self.min
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seller_cost_matches_eq6() {
        let p = SellerCostParams::new(0.3, 0.5).unwrap();
        // C = (0.3·4 + 0.5·2) · 0.8 = (1.2 + 1.0)·0.8 = 1.76
        assert!((p.cost(2.0, 0.8) - 1.76).abs() < 1e-12);
    }

    #[test]
    fn seller_cost_is_zero_at_zero_time() {
        let p = SellerCostParams::new(0.1, 0.9).unwrap();
        assert_eq!(p.cost(0.0, 0.7), 0.0);
    }

    #[test]
    fn seller_cost_rejects_bad_params() {
        assert!(SellerCostParams::new(0.0, 0.1).is_err());
        assert!(SellerCostParams::new(-1.0, 0.1).is_err());
        assert!(SellerCostParams::new(0.1, -0.1).is_err());
        assert!(SellerCostParams::new(f64::NAN, 0.1).is_err());
    }

    #[test]
    fn platform_cost_matches_eq8() {
        let p = PlatformCostParams::new(0.1, 1.0).unwrap();
        // C^J = 0.1·9 + 1·3 = 3.9
        assert!((p.cost(3.0) - 3.9).abs() < 1e-12);
    }

    #[test]
    fn platform_cost_rejects_bad_params() {
        assert!(PlatformCostParams::new(0.0, 1.0).is_err());
        assert!(PlatformCostParams::new(0.1, -1.0).is_err());
    }

    #[test]
    fn valuation_matches_eq10() {
        let v = ValuationParams::new(1000.0).unwrap();
        let expected = 1000.0 * (1.0 + 0.6 * 5.0_f64).ln();
        assert!((v.valuation(0.6, 5.0) - expected).abs() < 1e-9);
    }

    #[test]
    fn valuation_requires_omega_above_one() {
        assert!(ValuationParams::new(1.0).is_err());
        assert!(ValuationParams::new(0.5).is_err());
        assert!(ValuationParams::new(1.0001).is_ok());
    }

    #[test]
    fn valuation_diminishing_marginal_returns() {
        let v = ValuationParams::new(100.0).unwrap();
        let d1 = v.valuation(0.5, 2.0) - v.valuation(0.5, 1.0);
        let d2 = v.valuation(0.5, 3.0) - v.valuation(0.5, 2.0);
        assert!(d1 > d2, "marginal value must shrink: {d1} vs {d2}");
    }

    #[test]
    fn price_bounds_clamp_and_contains() {
        let b = PriceBounds::new(1.0, 5.0).unwrap();
        assert_eq!(b.clamp(0.0), 1.0);
        assert_eq!(b.clamp(9.0), 5.0);
        assert_eq!(b.clamp(3.0), 3.0);
        assert!(b.contains(1.0) && b.contains(5.0));
        assert!(!b.contains(5.0001));
        assert!((b.width() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn price_bounds_reject_inverted() {
        assert!(matches!(
            PriceBounds::new(5.0, 1.0),
            Err(CdtError::EmptyPriceRange { .. })
        ));
    }

    #[test]
    fn unbounded_contains_everything_reasonable() {
        let b = PriceBounds::unbounded();
        assert!(b.contains(0.0));
        assert!(b.contains(1e100));
    }

    #[test]
    fn quality_floor_is_small() {
        let floor = QUALITY_FLOOR; // bind so the assertion is not constant-folded by clippy
        assert!(floor > 0.0 && floor < 0.01);
    }
}
