//! Minimal `--flag value` parsing (no external CLI dependency).

use std::collections::HashMap;

/// Parsed `--name value` pairs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlagMap {
    values: HashMap<String, String>,
}

/// Flags that are boolean switches: present or absent, never followed by a
/// value token.
const SWITCHES: &[&str] = &["obs-summary", "fast-math", "obs-spans", "engine"];

impl FlagMap {
    /// Raw lookup.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// Whether a switch flag (e.g. `--obs-summary`) was given.
    #[must_use]
    pub fn is_set(&self, name: &str) -> bool {
        self.values.contains_key(name)
    }

    /// A `usize` flag with a default.
    ///
    /// # Errors
    /// Returns a message when the value does not parse.
    pub fn usize_or(&self, name: &str, default: usize) -> Result<usize, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name} expects an integer, got `{v}`")),
        }
    }

    /// A `u64` flag with a default.
    ///
    /// # Errors
    /// Returns a message when the value does not parse.
    pub fn u64_or(&self, name: &str, default: u64) -> Result<u64, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name} expects an integer, got `{v}`")),
        }
    }

    /// An `f64` flag with a default.
    ///
    /// # Errors
    /// Returns a message when the value does not parse.
    pub fn f64_or(&self, name: &str, default: f64) -> Result<f64, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name} expects a number, got `{v}`")),
        }
    }
}

/// Parses a `--name value …` argument list.
///
/// # Errors
/// Returns a message on a positional token, a flag without a value, or a
/// duplicated flag.
pub fn parse_flags(args: &[String]) -> Result<FlagMap, String> {
    let mut values = HashMap::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let name = arg
            .strip_prefix("--")
            .ok_or_else(|| format!("expected a --flag, got `{arg}`"))?;
        if name.is_empty() {
            return Err("empty flag `--`".into());
        }
        let value = if SWITCHES.contains(&name) {
            "true".to_owned()
        } else {
            it.next()
                .ok_or_else(|| format!("--{name} requires a value"))?
                .clone()
        };
        if values.insert(name.to_owned(), value).is_some() {
            return Err(format!("--{name} given twice"));
        }
    }
    Ok(FlagMap { values })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn parses_pairs() {
        let f = parse_flags(&v(&["--m", "300", "--seed", "7"])).unwrap();
        assert_eq!(f.usize_or("m", 0).unwrap(), 300);
        assert_eq!(f.u64_or("seed", 0).unwrap(), 7);
        assert_eq!(f.usize_or("k", 10).unwrap(), 10); // default
    }

    #[test]
    fn rejects_positional() {
        assert!(parse_flags(&v(&["300"])).is_err());
    }

    #[test]
    fn rejects_missing_value() {
        assert!(parse_flags(&v(&["--m"])).is_err());
    }

    #[test]
    fn rejects_duplicates() {
        assert!(parse_flags(&v(&["--m", "1", "--m", "2"])).is_err());
    }

    #[test]
    fn switch_flags_take_no_value() {
        let f = parse_flags(&v(&["--obs-summary", "--m", "10"])).unwrap();
        assert!(f.is_set("obs-summary"));
        assert_eq!(f.usize_or("m", 0).unwrap(), 10);
        assert!(!parse_flags(&v(&["--m", "10"]))
            .unwrap()
            .is_set("obs-summary"));
        // A trailing switch is complete on its own.
        assert!(parse_flags(&v(&["--obs-summary"])).is_ok());
    }

    #[test]
    fn engine_is_a_switch_but_gather_takes_a_value() {
        let f = parse_flags(&v(&["--engine", "--engine-gather-us", "250"])).unwrap();
        assert!(f.is_set("engine"));
        assert_eq!(f.u64_or("engine-gather-us", 150).unwrap(), 250);
        // --engine-gather-us is a value flag: bare use is rejected.
        assert!(parse_flags(&v(&["--engine-gather-us"])).is_err());
    }

    #[test]
    fn rejects_bad_number() {
        let f = parse_flags(&v(&["--omega", "abc"])).unwrap();
        assert!(f.f64_or("omega", 1000.0).is_err());
    }

    #[test]
    fn f64_parses() {
        let f = parse_flags(&v(&["--theta", "0.25"])).unwrap();
        assert_eq!(f.f64_or("theta", 0.1).unwrap(), 0.25);
    }

    #[test]
    fn empty_args_is_empty_map() {
        let f = parse_flags(&[]).unwrap();
        assert_eq!(f.get("anything"), None);
    }
}
