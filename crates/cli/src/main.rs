//! `cdt` — command-line driver for the CMAB-HS crowdsensing data trading
//! system.
//!
//! ```text
//! cdt trace generate [--records N] [--taxis M] [--seed S] [--out FILE]
//! cdt trace stats FILE
//! cdt run [--m M] [--k K] [--l L] [--n N] [--seed S] [--json FILE] [--journal FILE]
//! cdt budget [--m M] [--k K] [--l L] [--n N] [--seed S] --budget B [--journal FILE]
//! cdt compare [--m M] [--k K] [--l L] [--n N] [--seed S] [--reps R] [--threads T]
//! cdt sweep --axis k|m|n --grid V1,V2,... [--reps R] [--batch B] [...]
//! cdt game [--k K] [--omega W] [--theta T]
//! cdt obs summarize FILE
//! cdt obs flame FILE
//! cdt obs critical-path FILE
//! cdt journal verify FILE
//! cdt journal audit FILE
//! cdt journal recover FILE [--out FILE]
//! cdt journal compact FILE [--keep-segments N]
//! cdt journal seek FILE --round R
//! cdt journal diff A B [--tol T]
//! ```
//!
//! `run`, `budget`, `compare`, `sweep`, and the `journal` family additionally
//! accept `--obs-events FILE` (JSONL round traces), `--obs-events-sample
//! K` (record every K-th round only), `--metrics-out FILE` (Prometheus
//! text dump), and `--obs-summary` (end-of-run phase/pool table); `cdt
//! obs summarize` re-renders that summary offline from a trace file.
//! `--obs-spans` adds causal spans to the trace (analyzed offline with
//! `cdt obs flame` / `cdt obs critical-path`) and `--watchdog-ms N` runs
//! the health watchdog. `--journal FILE` streams the Fig. 2 market
//! protocol to FILE as rounds settle (`--journal-segment-rounds N`
//! rotates it into indexed segments), and the `cdt journal` family
//! verifies, audits, crash-recovers, compacts, seeks into, and diffs
//! those journals. `run`,
//! `budget`, and `compare` also take `--lanes W` / `--fast-math` to
//! configure the chunked column kernels; `cdt journal diff` validates
//! their divergence contracts against settled payments. `compare` and
//! `sweep` take `--engine` / `--engine-gather-us US` to route their
//! cell-packed job streams through the resident worker runtime
//! (persistent pool, cross-request packing; bit-identical to the
//! per-call pool default).

use cdt_cli::args::{parse_flags, FlagMap};
use cdt_cli::commands;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let code = run(&argv);
    std::process::exit(code);
}

fn run(argv: &[String]) -> i32 {
    let mut words = argv.iter().map(String::as_str);
    let result = match (words.next(), words.next()) {
        (Some("trace"), Some("generate")) => with_flags(&argv[2..], commands::trace_generate),
        (Some("trace"), Some("stats")) => {
            let path = argv.get(2).map(String::as_str);
            match path {
                Some(p) => commands::trace_stats_cmd(p),
                None => Err("usage: cdt trace stats FILE".into()),
            }
        }
        (Some("obs"), Some(sub @ ("summarize" | "flame" | "critical-path"))) => {
            let path = argv.get(2).map(String::as_str);
            match path {
                Some(p) => match sub {
                    "summarize" => commands::obs_summarize_cmd(p),
                    "flame" => commands::obs_flame_cmd(p),
                    _ => commands::obs_critical_path_cmd(p),
                },
                None => Err(format!("usage: cdt obs {sub} FILE")),
            }
        }
        (Some("journal"), Some(sub @ ("verify" | "audit" | "recover" | "compact" | "seek"))) => {
            match argv.get(2).map(String::as_str) {
                Some(path) => parse_flags(&argv[3..]).and_then(|flags| match sub {
                    "verify" => commands::journal_verify_cmd(path, &flags),
                    "audit" => commands::journal_audit_cmd(path, &flags),
                    "compact" => commands::journal_compact_cmd(path, &flags),
                    "seek" => commands::journal_seek_cmd(path, &flags),
                    _ => commands::journal_recover_cmd(path, flags.get("out"), &flags),
                }),
                None => Err(format!("usage: cdt journal {sub} FILE")),
            }
        }
        (Some("journal"), Some("diff")) => {
            match (
                argv.get(2).map(String::as_str),
                argv.get(3).map(String::as_str),
            ) {
                (Some(a), Some(b)) => parse_flags(&argv[4..])
                    .and_then(|flags| commands::journal_diff_cmd(a, b, &flags)),
                _ => Err("usage: cdt journal diff A B [--tol T]".into()),
            }
        }
        (Some("journal"), _) => {
            Err("usage: cdt journal verify|audit|recover|compact|seek|diff FILE".into())
        }
        (Some("run"), _) => with_flags(&argv[1..], commands::run_mechanism),
        (Some("budget"), _) => with_flags(&argv[1..], commands::budget),
        (Some("compare"), _) => with_flags(&argv[1..], commands::compare),
        (Some("sweep"), _) => with_flags(&argv[1..], commands::sweep),
        (Some("game"), _) => with_flags(&argv[1..], commands::game),
        (Some("--help" | "-h"), _) | (None, _) => {
            println!("{}", commands::USAGE);
            return 0;
        }
        (Some(other), _) => Err(format!("unknown command `{other}`\n{}", commands::USAGE)),
    };
    match result {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: {e}");
            2
        }
    }
}

fn with_flags(
    rest: &[String],
    f: impl FnOnce(&FlagMap) -> Result<(), String>,
) -> Result<(), String> {
    let flags = parse_flags(rest)?;
    f(&flags)
}
