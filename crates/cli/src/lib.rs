//! Library half of the `cdt` CLI: flag parsing and command
//! implementations, kept in a lib target so they are unit-testable.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod args;
pub mod commands;
