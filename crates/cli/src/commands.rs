//! Implementations of the `cdt` subcommands.

use crate::args::FlagMap;
use cdt_core::{BudgetedCmabHs, CmabHs, LedgerMode, Scenario, StopReason};
use cdt_game::{solve_equilibrium, verify_equilibrium, welfare_report};
use cdt_sim::experiments::{game_curves, Scale};
use cdt_sim::{
    compare_policies, replicate, replication_table, run_cells_observed, CellJob, PolicySpec,
    RunResult, Series,
};
use cdt_trace::{csv, generate_trace, trace_stats, TraceConfig};
use cdt_types::mix_seed;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Top-level usage text.
pub const USAGE: &str = "\
cdt — CMAB-HS crowdsensing data trading (ICDE 2021 reproduction)

USAGE:
  cdt trace generate [--records N] [--taxis M] [--seed S] [--out FILE]
  cdt trace stats FILE
  cdt run      [--m M] [--k K] [--l L] [--n N] [--seed S] [--json FILE] [--journal FILE]
               [--journal-segment-rounds N] [--lanes W] [--fast-math]
  cdt budget   [--m M] [--k K] [--l L] [--n N] [--seed S] --budget B [--journal FILE]
               [--journal-segment-rounds N] [--lanes W] [--fast-math]
  cdt compare  [--m M] [--k K] [--l L] [--n N] [--seed S] [--reps R] [--threads T]
               [--chunk C] [--batch B] [--lanes W] [--fast-math] [--engine]
               [--engine-gather-us US]
  cdt sweep    --axis k|m|n --grid V1,V2,... [--m M] [--k K] [--l L] [--n N]
               [--reps R] [--seed S] [--threads T] [--chunk C] [--batch B]
               [--lanes W] [--fast-math] [--engine] [--engine-gather-us US]
  cdt game     [--k K] [--omega W] [--theta T]
  cdt obs summarize     FILE
  cdt obs flame         FILE
  cdt obs critical-path FILE
  cdt journal verify  FILE
  cdt journal audit   FILE
  cdt journal recover FILE [--out FILE]
  cdt journal compact FILE [--keep-segments N]
  cdt journal seek    FILE --round R
  cdt journal diff    A B [--tol T]

PROTOCOL JOURNAL:
  `run --journal FILE` and `budget --journal FILE` stream the Fig. 2
  market protocol to FILE as rounds settle: every event is validated
  against the protocol state machine before it is written, the buffered
  writer flushes at each settlement boundary, and bytes accumulate in
  FILE.partial until an atomic rename publishes the finished journal. A
  killed run therefore leaves FILE.partial with at most the in-flight
  round unsettled. `journal verify` is the strict all-or-nothing replay
  check, `journal audit` additionally prints the per-round settlement
  money flow, and `journal recover` replays a (possibly truncated)
  journal up to its last settlement boundary — `--out FILE` writes the
  recovered prefix back out as a valid journal (refusing to overwrite an
  existing file or emit a prefix longer than its source).

  --journal-segment-rounds N (or CDT_JOURNAL_SEGMENT_ROUNDS) rotates the
  journal into FILE.seg-0000, FILE.seg-0001, ... at settlement
  boundaries every N settled rounds, with FILE.idx mapping round ranges
  to segments; `cat FILE.seg-*` is byte-identical to the single-file
  journal, and verify/audit/recover/diff read both layouts. `journal
  compact` folds the settled prefix into a digest-verified checkpoint
  (state snapshot + settlement ledger) so replay resumes mid-history;
  `journal seek --round R` answers one round's settlement from the index
  with at most one segment replay.

OBSERVABILITY (on `run`, `budget`, `compare`, `sweep`, and the `journal`
family):
  --obs-events FILE      write one JSON object per round event (JSONL trace)
  --obs-events-sample K  record only every K-th round's events (metrics
                         still cover every round)
  --metrics-out FILE     dump the metrics registry in Prometheus text format
  --obs-summary          print the end-of-run phase/pool summary table
  --obs-spans            also emit causal spans (run/round/phase, pool/chunk,
                         lane_group, journal write/flush) into --obs-events
  --watchdog-ms N        run the health watchdog, sampling every N ms:
                         stalled workers, slow rounds (p99 x 4), journal
                         flush spikes become `health` records + counters
  --watchdog-slow-round-ns N  explicit slow-round threshold (default: derived)

`cdt obs summarize FILE` re-renders that summary table offline from a
JSONL trace written earlier with --obs-events. `cdt obs flame FILE`
renders a traced run (--obs-spans) as a self-time flame tree; `cdt obs
critical-path FILE` prints the longest causal chain per round. Tracing
and the watchdog are passive: results, ledgers, and journal bytes are
bit-identical with them on or off.

Defaults follow the paper's Table II (M=300, K=10, L=10, omega=1000,
theta=0.1); `run`/`compare` default to N=2000 so they finish in seconds —
pass --n 100000 for the paper's horizon.

`compare` fans its per-policy (and per-replication) runs out over worker
threads; --threads T (or the CDT_THREADS env var) sets the pool size and
--threads 1 forces the exact serial path. --chunk C (or CDT_CHUNK) pins
the pool's cursor-claim chunk size (default: adaptive guided
self-scheduling; --chunk 1 is job-at-a-time claiming). --batch B (or
CDT_BATCH) groups every B same-shape replications into one lockstep job
that advances all lanes round-by-round through shared policy matrices
(default: 1, unbatched). Results are bit-for-bit identical at any thread
count, chunk size, and batch width, with observability on or off.

`sweep` runs a whole grid over one axis (--axis k|m|n, --grid V1,V2,...;
the other dimensions stay at their fixed flags) with --reps fresh
scenarios per grid point, all flattened into ONE cell-packed job stream:
jobs bucket by lockstep-compatible shape (M, K, N, policy incl.
parameters) and pack into batches of up to --batch lanes, coalescing
ragged tails across grid cells. The printed tables are bit-for-bit
identical at any batch/chunk/threads/lanes setting; --obs-summary adds
the packing stats (groups, coalesced groups, mean lane occupancy).

ENGINE RUNTIME (on `compare` and `sweep`):
  --engine (or CDT_ENGINE=1) routes the cell-packed job stream through
  the resident engine runtime: a persistent worker pool parked on a
  condvar-backed submission queue, whose thread-local scratch arenas stay
  warm between submissions and whose gather window lets *concurrent*
  submissions share lockstep SoA batches (cross-request cell packing).
  --engine-gather-us US (or CDT_ENGINE_GATHER_US) sets that window in
  microseconds (default 150; 0 dispatches immediately; a saturated queue
  never waits). The engine is a scheduling change only: output is
  bit-for-bit identical to the per-call pool, which remains the default
  and the identity oracle.

LANE KERNELS (on `run`, `budget`, and `compare`):
  The column kernels (UCB index fill, estimator round sweep, Stackelberg
  aggregates and best responses, observation totals) run as fixed-width
  chunked loops sized for the autovectorizer. --lanes W (or CDT_LANES)
  picks the accumulator width (1, 2, 4, or 8; default 8); on the default
  deterministic path every width is bit-identical to the serial reference
  because float expression trees are preserved. --fast-math (or
  CDT_FAST_MATH=1) additionally reassociates lane *reductions* — still
  deterministic for a fixed width and input, but no longer bit-identical
  to the serial order. `cdt journal diff A B [--tol T]` is the validator:
  it aligns two journals' settled rounds, reports the maximum absolute /
  relative payment divergence, and exits nonzero beyond --tol (default 0,
  i.e. bit-identical or fail). Deterministic runs of one scenario must
  diff to zero; fast-math runs must stay within the documented bound.";

/// An installed observability pipeline plus what to do with it at the end
/// of the command.
pub struct ObsSession {
    metrics_out: Option<String>,
    active: bool,
}

/// Installs the global observability pipeline if any of `--obs-events`,
/// `--metrics-out`, `--obs-summary` was given; otherwise a no-op session.
///
/// # Errors
/// Returns a message when the events file cannot be created.
pub fn obs_begin(flags: &FlagMap) -> Result<ObsSession, String> {
    let events_path = flags.get("obs-events").map(std::path::PathBuf::from);
    let metrics_out = flags.get("metrics-out").map(str::to_owned);
    let summary = flags.is_set("obs-summary");
    let events_sample = flags.usize_or("obs-events-sample", 0)?;
    let spans = flags.is_set("obs-spans");
    if spans && events_path.is_none() {
        return Err("--obs-spans requires --obs-events FILE (spans are written there)".into());
    }
    let watchdog_ms = match flags.get("watchdog-ms") {
        None => None,
        Some(_) => {
            let ms = flags.u64_or("watchdog-ms", 0)?;
            if ms == 0 {
                return Err("--watchdog-ms must be at least 1".into());
            }
            Some(ms)
        }
    };
    let slow_round_ns = match flags.get("watchdog-slow-round-ns") {
        None => None,
        Some(_) => Some(flags.u64_or("watchdog-slow-round-ns", 0)?),
    };
    let active = events_path.is_some() || metrics_out.is_some() || summary || watchdog_ms.is_some();
    if active {
        cdt_obs::global().reset();
        cdt_obs::install(cdt_obs::ObsConfig {
            events_path,
            summary,
            events_sample,
            spans,
            watchdog_ms,
            slow_round_ns,
        })
        .map_err(|e| format!("cannot set up observability: {e}"))?;
    }
    Ok(ObsSession {
        metrics_out,
        active,
    })
}

/// Flushes the event sink, dumps the metrics registry, prints the summary
/// table, and uninstalls the pipeline.
///
/// # Errors
/// Returns a message on sink-flush or metrics-write failure.
pub fn obs_finish(session: ObsSession) -> Result<(), String> {
    if !session.active {
        return Ok(());
    }
    cdt_obs::flush().map_err(|e| format!("cannot flush observability events: {e}"))?;
    if let Some(path) = &session.metrics_out {
        std::fs::write(path, cdt_obs::render(cdt_obs::global()))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("metrics written to {path}");
    }
    if cdt_obs::summary_requested() {
        print!("{}", cdt_obs::render_summary(cdt_obs::global()));
    }
    cdt_obs::uninstall();
    Ok(())
}

/// Applies the `--threads` flag (if present) to the parallel-engine
/// override; `--threads 1` forces the exact serial path.
fn apply_threads(flags: &FlagMap) -> Result<(), String> {
    if let Some(raw) = flags.get("threads") {
        let t: usize = raw
            .parse()
            .map_err(|_| format!("--threads expects an integer, got `{raw}`"))?;
        if t == 0 {
            return Err("--threads must be at least 1".into());
        }
        cdt_sim::set_thread_override(Some(t));
    }
    apply_chunk(flags)
}

/// Applies the `--chunk` flag (if present) to the pool's cursor-claim
/// chunk size; any value is bit-identical (results gather by job index),
/// `--chunk 1` reproduces job-at-a-time claiming. Without the flag the
/// pool uses `CDT_CHUNK` or adaptive chunking.
fn apply_chunk(flags: &FlagMap) -> Result<(), String> {
    if let Some(raw) = flags.get("chunk") {
        let c: usize = raw
            .parse()
            .map_err(|_| format!("--chunk expects an integer, got `{raw}`"))?;
        if c == 0 {
            return Err("--chunk must be at least 1".into());
        }
        cdt_sim::set_chunk_override(Some(c));
    }
    apply_batch(flags)
}

/// Applies the `--batch` flag (if present) to the lockstep-batch width:
/// every `B` same-shape replications advance round-by-round through one
/// job. Any width is bit-identical; `--batch 1` is the unbatched path.
/// Without the flag the engine uses `CDT_BATCH` or stays unbatched.
fn apply_batch(flags: &FlagMap) -> Result<(), String> {
    if let Some(raw) = flags.get("batch") {
        let b: usize = raw
            .parse()
            .map_err(|_| format!("--batch expects an integer, got `{raw}`"))?;
        if b == 0 {
            return Err("--batch must be at least 1".into());
        }
        cdt_sim::set_batch_override(Some(b));
    }
    apply_lanes(flags)
}

/// Applies the `--lanes` and `--fast-math` flags (if present) and pushes
/// the resolved lane configuration into the column kernels' process state.
/// `--lanes W` picks the chunked kernels' accumulator width (bit-identical
/// at any width on the default path); `--fast-math` enables reassociated
/// lane reductions (deterministic per width, bounded divergence — validate
/// with `cdt journal diff`). Without the flags the kernels use
/// `CDT_LANES` / `CDT_FAST_MATH` or the deterministic defaults.
fn apply_lanes(flags: &FlagMap) -> Result<(), String> {
    if let Some(raw) = flags.get("lanes") {
        let w: usize = raw
            .parse()
            .map_err(|_| format!("--lanes expects an integer, got `{raw}`"))?;
        if !cdt_types::lanes::is_supported_lane_width(w) {
            return Err(format!(
                "--lanes must be one of {:?}, got {w}",
                cdt_types::lanes::SUPPORTED_LANE_WIDTHS
            ));
        }
        cdt_sim::set_lanes_override(Some(w));
    }
    if flags.is_set("fast-math") {
        cdt_sim::set_fast_math_override(Some(true));
    }
    cdt_sim::sync_lane_config();
    apply_engine(flags)
}

/// Applies the `--engine` and `--engine-gather-us` flags (if present):
/// `--engine` routes cell streams through the resident worker runtime
/// (persistent pool + cross-request packing; bit-identical to the
/// per-call pool), and `--engine-gather-us US` pins its gather window
/// (0 dispatches immediately). Without the flags the process uses
/// `CDT_ENGINE` / `CDT_ENGINE_GATHER_US` or the per-call default.
fn apply_engine(flags: &FlagMap) -> Result<(), String> {
    if flags.is_set("engine") {
        cdt_sim::set_engine_override(Some(true));
    }
    if let Some(raw) = flags.get("engine-gather-us") {
        let us: u64 = raw.parse().map_err(|_| {
            format!("--engine-gather-us expects a non-negative integer, got `{raw}`")
        })?;
        cdt_sim::set_engine_gather_override(Some(us));
    }
    Ok(())
}

/// `cdt obs summarize FILE` — offline summary of a JSONL event trace.
///
/// # Errors
/// Returns a message on I/O failure.
pub fn obs_summarize_cmd(path: &str) -> Result<(), String> {
    let text = cdt_obs::summarize_trace(std::path::Path::new(path))
        .map_err(|e| format!("cannot summarize {path}: {e}"))?;
    print!("{text}");
    Ok(())
}

/// Reads a JSONL trace and parses its span lines, failing on an empty set.
fn span_set_from(path: &str) -> Result<cdt_obs::SpanSet, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let set = cdt_obs::SpanSet::from_jsonl(&text);
    if set.is_empty() {
        return Err(format!(
            "{path}: no span records found (rerun with --obs-events FILE --obs-spans)"
        ));
    }
    Ok(set)
}

/// `cdt obs flame FILE` — offline self-time flame view of a span trace:
/// the causal tree merged by span name, heaviest subtree first, with
/// inclusive and exclusive (self) time per node. Each root line reconciles
/// the root's inclusive time against the exact sum of its tree's
/// exclusive self-times.
///
/// # Errors
/// Returns a message on I/O failure or a trace with no span records.
pub fn obs_flame_cmd(path: &str) -> Result<(), String> {
    print!("{}", cdt_obs::render_flame(&span_set_from(path)?));
    Ok(())
}

/// `cdt obs critical-path FILE` — the longest causal chain through each
/// round span (slowest rounds first): where the wall clock actually went.
///
/// # Errors
/// Returns a message on I/O failure or a trace with no span records.
pub fn obs_critical_path_cmd(path: &str) -> Result<(), String> {
    print!("{}", cdt_obs::render_critical_path(&span_set_from(path)?));
    Ok(())
}

/// `cdt journal verify FILE` — strict all-or-nothing replay validation of
/// a protocol journal: every line must parse and the whole history must
/// replay through the state machine.
///
/// # Errors
/// Returns a message on I/O failure or the first replay violation.
pub fn journal_verify_cmd(path: &str, flags: &FlagMap) -> Result<(), String> {
    let obs = obs_begin(flags)?;
    let result = journal_verify_inner(path);
    let finish = obs_finish(obs);
    result?;
    finish
}

fn journal_verify_inner(path: &str) -> Result<(), String> {
    let view = cdt_protocol::load_journal(std::path::Path::new(path)).map_err(|e| e.to_string())?;
    println!(
        "{path}: valid journal — {} events, {} settled rounds, {}",
        view.events,
        view.settled_rounds(),
        if view.completed() {
            "completed"
        } else {
            "not completed"
        }
    );
    if view.segmented {
        println!(
            "segments: {} sealed, checkpoint: {} rounds / {} events folded",
            view.segments, view.compacted_rounds, view.compacted_events
        );
    }
    Ok(())
}

/// `cdt journal audit FILE` — verify, then print the settlement money
/// flow round by round (long journals elide the middle rounds).
///
/// # Errors
/// Returns a message on I/O failure or replay violation.
pub fn journal_audit_cmd(path: &str, flags: &FlagMap) -> Result<(), String> {
    let obs = obs_begin(flags)?;
    let result = journal_audit_inner(path);
    let finish = obs_finish(obs);
    result?;
    finish
}

fn journal_audit_inner(path: &str) -> Result<(), String> {
    let view = cdt_protocol::load_journal(std::path::Path::new(path)).map_err(|e| e.to_string())?;
    // Row-order sums: bit-identical to the pre-segmentation full-replay
    // totals, and to the checkpoint's digested totals after compaction.
    let consumer_total = view.consumer_total();
    let seller_total = view.seller_total();
    println!("journal audit: {path}");
    println!(
        "events: {}   settled rounds: {}   completed: {}",
        view.events,
        view.settled_rounds(),
        view.completed()
    );
    if view.segmented {
        println!(
            "segments: {} sealed, checkpoint: {} rounds / {} events folded",
            view.segments, view.compacted_rounds, view.compacted_events
        );
    }
    println!("consumer paid: {consumer_total:.1}   sellers received: {seller_total:.1}");
    println!(
        "{:<8} {:>14} {:>14} {:>8}",
        "round", "consumer", "sellers", "k"
    );
    const CAP: usize = 10;
    let settlements = &view.settlements;
    for (i, row) in settlements.iter().enumerate() {
        if settlements.len() > 2 * CAP && (CAP..settlements.len() - CAP).contains(&i) {
            if i == CAP {
                println!("...      ({} rounds elided)", settlements.len() - 2 * CAP);
            }
            continue;
        }
        println!(
            "{:<8} {:>14.4} {:>14.4} {:>8}",
            row.round.index(),
            row.consumer,
            row.sellers.iter().sum::<f64>(),
            row.sellers.len()
        );
    }
    Ok(())
}

/// `cdt journal recover FILE [--out FILE]` — truncation-tolerant replay of
/// a (possibly partial) journal: keeps the longest prefix ending on a
/// settlement boundary, reports where and why replay stopped, and with
/// `--out` writes the recovered prefix back out as a valid journal.
///
/// # Errors
/// Returns a message on I/O failure (recovery itself never fails).
pub fn journal_recover_cmd(path: &str, out: Option<&str>, flags: &FlagMap) -> Result<(), String> {
    let obs = obs_begin(flags)?;
    let result = journal_recover_inner(path, out);
    let finish = obs_finish(obs);
    result?;
    finish
}

fn journal_recover_inner(path: &str, out: Option<&str>) -> Result<(), String> {
    let rec =
        cdt_protocol::recover_journal(std::path::Path::new(path)).map_err(|e| e.to_string())?;
    println!(
        "{path}: recovered {} settled rounds ({} events kept of {} lines{})",
        rec.settled_rounds(),
        rec.events_kept,
        rec.lines_read,
        if rec.completed() { ", completed" } else { "" }
    );
    if rec.compacted_rounds > 0 {
        println!(
            "resumed from checkpoint: {} rounds / {} events folded",
            rec.compacted_rounds, rec.compacted_events
        );
    }
    if let Some(stop) = &rec.stop {
        println!("replay stopped at line {}: {}", stop.line, stop.reason);
    }
    if let Some(out_path) = out {
        // Output safety: never clobber an existing file with a recovered
        // prefix — the existing file may itself be the better history.
        if std::path::Path::new(out_path).exists() {
            return Err(format!(
                "refusing to overwrite existing {out_path} (delete it or pick another --out path)"
            ));
        }
        // A compacted history's folded events exist only inside the
        // checkpoint; the kept text alone would replay from round 0 and
        // fail, so there is no valid flat journal to write.
        if rec.compacted_events > 0 {
            return Err(format!(
                "cannot write --out from a compacted journal: {} events live only in the \
                 checkpoint (the segments still replay in place — use `cdt journal verify`)",
                rec.compacted_events
            ));
        }
        // A recovered prefix can never be longer than what was read: a
        // longer "prefix" means the source shrank or changed underneath
        // the replay (truncation race) and the output must not be trusted.
        let mut source_bytes = rec.source_bytes;
        if let Ok(meta) = std::fs::metadata(path) {
            source_bytes = source_bytes.min(meta.len());
        }
        if rec.kept_text.len() as u64 > source_bytes {
            return Err(format!(
                "recovered prefix ({} bytes) is longer than the source journal ({source_bytes} \
                 bytes): the source changed while it was being read (truncation race) — re-run \
                 recovery",
                rec.kept_text.len()
            ));
        }
        std::fs::write(out_path, &rec.kept_text)
            .map_err(|e| format!("cannot write {out_path}: {e}"))?;
        println!("recovered journal written to {out_path}");
    }
    Ok(())
}

/// `cdt journal diff A B [--tol T]` — round-aligned settlement comparison
/// between two journals: the divergence validator for the lane kernels.
/// Two deterministic-path runs of the same scenario must diff to zero;
/// `--fast-math` runs must stay within the documented reassociation bound
/// (pass it as `--tol`). Exits nonzero on a structural mismatch or when
/// the maximum absolute divergence exceeds the tolerance (default 0:
/// bit-identical or fail).
///
/// # Errors
/// Returns a message on I/O failure, an invalid journal, a structural
/// mismatch, or divergence beyond `--tol`.
pub fn journal_diff_cmd(path_a: &str, path_b: &str, flags: &FlagMap) -> Result<(), String> {
    let obs = obs_begin(flags)?;
    let result = journal_diff_inner(path_a, path_b, flags);
    let finish = obs_finish(obs);
    result?;
    finish
}

fn journal_diff_inner(path_a: &str, path_b: &str, flags: &FlagMap) -> Result<(), String> {
    let tol = flags.f64_or("tol", 0.0)?;
    if !tol.is_finite() || tol < 0.0 {
        return Err(format!(
            "--tol must be a finite non-negative number, got {tol}"
        ));
    }
    let read_view = |path: &str| -> Result<cdt_protocol::JournalView, String> {
        cdt_protocol::load_journal(std::path::Path::new(path)).map_err(|e| e.to_string())
    };
    let view_a = read_view(path_a)?;
    let view_b = read_view(path_b)?;
    let d = cdt_protocol::diff_settlement_rows(&view_a.settlements, &view_b.settlements);
    println!("journal diff: {path_a} vs {path_b}");
    println!(
        "settled rounds: {} vs {}   compared: {}",
        d.rounds_a, d.rounds_b, d.rounds_compared
    );
    match d.worst_round {
        Some(round) => println!(
            "max divergence: {:.3e} abs, {:.3e} rel (worst at round {})",
            d.max_abs,
            d.max_rel,
            round.index()
        ),
        None => println!("max divergence: 0 (settlements bit-identical)"),
    }
    if let Some(msg) = &d.structural {
        return Err(format!("structural mismatch: {msg}"));
    }
    if !d.within(tol) {
        return Err(format!(
            "settlements diverge: max abs {:.3e} exceeds tolerance {tol:.3e}",
            d.max_abs
        ));
    }
    println!("within tolerance {tol:.3e}");
    Ok(())
}

/// `cdt journal compact FILE [--keep-segments N]` — fold the settled
/// prefix of a segment-rotated journal into a digest-verified checkpoint
/// (a `ProtocolState` snapshot plus the settlement ledger), keeping the
/// last N segments (default 0: fold everything). Replay-to-round and
/// recovery resume from the checkpoint instead of round 0.
///
/// # Errors
/// Returns a message on I/O failure, a single-file (unsegmented) journal,
/// or a replay/digest violation in the segments being folded.
pub fn journal_compact_cmd(path: &str, flags: &FlagMap) -> Result<(), String> {
    let obs = obs_begin(flags)?;
    let result = journal_compact_inner(path, flags);
    let finish = obs_finish(obs);
    result?;
    finish
}

fn journal_compact_inner(path: &str, flags: &FlagMap) -> Result<(), String> {
    let keep = flags.usize_or("keep-segments", 0)?;
    let report = cdt_protocol::compact_journal(std::path::Path::new(path), keep)
        .map_err(|e| e.to_string())?;
    if report.folded_segments == 0 {
        println!(
            "{path}: nothing to fold ({} segment{} kept, checkpoint at {} rounds)",
            report.kept_segments,
            if report.kept_segments == 1 { "" } else { "s" },
            report.checkpoint_rounds
        );
        return Ok(());
    }
    println!(
        "{path}: folded {} segment{} ({} rounds, {} events) into checkpoint generation {}",
        report.folded_segments,
        if report.folded_segments == 1 { "" } else { "s" },
        report.folded_rounds,
        report.folded_events,
        report.generation
    );
    println!(
        "checkpoint now covers {} rounds; {} segment{} kept",
        report.checkpoint_rounds,
        report.kept_segments,
        if report.kept_segments == 1 { "" } else { "s" }
    );
    Ok(())
}

/// `cdt journal seek FILE --round R` — settlement lookup for one round:
/// an index lookup plus at most one segment replay on a segmented
/// journal (or the checkpoint ledger directly for a compacted round),
/// instead of a full-history replay.
///
/// # Errors
/// Returns a message on I/O failure, a missing/invalid `--round`, an
/// unsettled round, or a digest violation in the segment scanned.
pub fn journal_seek_cmd(path: &str, flags: &FlagMap) -> Result<(), String> {
    let obs = obs_begin(flags)?;
    let result = journal_seek_inner(path, flags);
    let finish = obs_finish(obs);
    result?;
    finish
}

fn journal_seek_inner(path: &str, flags: &FlagMap) -> Result<(), String> {
    let raw = flags
        .get("round")
        .ok_or("journal seek requires --round R")?;
    let round: usize = raw
        .parse()
        .map_err(|_| format!("--round expects an integer, got `{raw}`"))?;
    let lookup = cdt_protocol::replay_to_round(std::path::Path::new(path), round)
        .map_err(|e| e.to_string())?;
    let row = &lookup.row;
    println!(
        "round {}: consumer paid {:.4}, sellers received {:.4} (k={})",
        row.round.index(),
        row.consumer,
        row.sellers.iter().sum::<f64>(),
        row.sellers.len()
    );
    if lookup.from_checkpoint {
        println!("served from checkpoint ledger (0 events replayed)");
    } else if let Some(seq) = lookup.segment {
        println!(
            "served from segment {seq} ({} events replayed)",
            lookup.events_scanned
        );
    } else {
        println!(
            "served by full-journal replay ({} events replayed)",
            lookup.events_scanned
        );
    }
    Ok(())
}

/// Resolves the journal rotation setting: `--journal-segment-rounds N`
/// beats the `CDT_JOURNAL_SEGMENT_ROUNDS` env var; absent both, rotation
/// is off and the journal stays a single file.
///
/// # Errors
/// Returns a message when the flag value is not a positive integer (a
/// malformed env var warns and is treated as off).
pub fn journal_rotation(flags: &FlagMap) -> Result<Option<cdt_protocol::RotationConfig>, String> {
    if let Some(raw) = flags.get("journal-segment-rounds") {
        let rounds: usize = raw
            .parse()
            .map_err(|_| format!("--journal-segment-rounds expects an integer, got `{raw}`"))?;
        if rounds == 0 {
            return Err("--journal-segment-rounds must be at least 1".into());
        }
        return Ok(Some(cdt_protocol::RotationConfig {
            segment_rounds: rounds,
        }));
    }
    if let Ok(raw) = std::env::var("CDT_JOURNAL_SEGMENT_ROUNDS") {
        match raw.parse::<usize>() {
            Ok(rounds) if rounds > 0 => {
                return Ok(Some(cdt_protocol::RotationConfig {
                    segment_rounds: rounds,
                }))
            }
            _ => eprintln!(
                "warning: ignoring CDT_JOURNAL_SEGMENT_ROUNDS=`{raw}` (expected a positive \
                 integer); journal rotation is off"
            ),
        }
    }
    Ok(None)
}

/// `cdt trace generate`.
///
/// # Errors
/// Returns a message on flag or I/O failure.
pub fn trace_generate(flags: &FlagMap) -> Result<(), String> {
    let config = TraceConfig {
        num_records: flags.usize_or("records", 27_465)?,
        num_taxis: flags.u64_or("taxis", 300)? as u32,
        ..TraceConfig::paper_scale()
    };
    let seed = flags.u64_or("seed", 20_210_419)?;
    let records = generate_trace(&config, &mut StdRng::seed_from_u64(seed));
    let stats = trace_stats(&records);
    println!(
        "generated {} records, {} taxis, {} areas, mean trip {:.2} mi, area gini {:.3}",
        stats.num_records, stats.num_taxis, stats.num_areas, stats.mean_trip_miles, stats.area_gini
    );
    if let Some(path) = flags.get("out") {
        std::fs::write(path, csv::to_csv(&records))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("trace written to {path}");
    }
    Ok(())
}

/// `cdt trace stats FILE`.
///
/// # Errors
/// Returns a message on I/O or parse failure.
pub fn trace_stats_cmd(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let records = csv::from_csv(&text).map_err(|e| e.to_string())?;
    let s = trace_stats(&records);
    println!("records:            {}", s.num_records);
    println!("taxis:              {}", s.num_taxis);
    println!("areas touched:      {}", s.num_areas);
    println!("mean trip miles:    {:.2}", s.mean_trip_miles);
    println!("area gini:          {:.3}", s.area_gini);
    println!("busiest taxi trips: {}", s.max_trips_per_taxi);
    let peak = s
        .hourly_counts
        .iter()
        .enumerate()
        .max_by_key(|&(_, c)| *c)
        .map(|(h, _)| h)
        .unwrap_or(0);
    println!("peak hour:          {peak}:00");
    Ok(())
}

fn print_ledger(scenario: &Scenario, ledger: &cdt_core::TradingLedger) {
    println!(
        "CMAB-HS: M={} K={} L={} N={}",
        scenario.config.m(),
        scenario.config.k(),
        scenario.config.l(),
        scenario.config.n()
    );
    println!("rounds:            {}", ledger.rounds());
    println!("observed revenue:  {:.1}", ledger.total_observed_revenue());
    println!("consumer paid:     {:.1}", ledger.total_consumer_payment());
    println!("sellers received:  {:.1}", ledger.total_seller_payment());
    println!(
        "mean PoC/PoP/PoS:  {:.2} / {:.2} / {:.2}",
        ledger.mean_consumer_profit(),
        ledger.mean_platform_profit(),
        ledger.mean_seller_profit()
    );
}

fn scenario_from_flags(flags: &FlagMap) -> Result<(Scenario, StdRng, u64), String> {
    let m = flags.usize_or("m", 300)?;
    let k = flags.usize_or("k", 10)?;
    let l = flags.usize_or("l", 10)?;
    let n = flags.usize_or("n", 2_000)?;
    let seed = flags.u64_or("seed", 20_210_419)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let scenario = Scenario::paper_defaults(m, k, l, n, &mut rng).map_err(|e| e.to_string())?;
    Ok((scenario, rng, seed))
}

/// `cdt run` — run CMAB-HS end to end and print the settlement.
///
/// # Errors
/// Returns a message on flag, run, or I/O failure.
pub fn run_mechanism(flags: &FlagMap) -> Result<(), String> {
    let obs = obs_begin(flags)?;
    let result = run_mechanism_inner(flags);
    let finish = obs_finish(obs);
    result?;
    finish
}

fn run_mechanism_inner(flags: &FlagMap) -> Result<(), String> {
    apply_lanes(flags)?;
    let (scenario, mut rng, _) = scenario_from_flags(flags)?;
    let mut mech = CmabHs::new(scenario.config.clone()).map_err(|e| e.to_string())?;
    let observer = scenario.observer();

    // With --journal, attach a streaming JournalObserver: each Fig. 2
    // event is validated, written, and flushed as its round settles, so a
    // killed run still leaves a recoverable `<path>.partial` behind. When
    // the obs pipeline is installed the journal rides alongside it via the
    // pair observer.
    if let Some(path) = flags.get("journal") {
        let rotation = journal_rotation(flags)?;
        let mut journal =
            cdt_protocol::JournalObserver::create_with(path, scenario.config.job.clone(), rotation)
                .map_err(|e| e.to_string())?;
        let ledger = match cdt_obs::observer_for_run("cmab-hs") {
            Some(pipeline) => {
                let mut pair = (journal, pipeline);
                let ledger = mech
                    .run_with_mode_observed(&observer, &mut rng, LedgerMode::Summary, &mut pair)
                    .map_err(|e| e.to_string())?;
                journal = pair.0;
                ledger
            }
            None => mech
                .run_with_mode_observed(&observer, &mut rng, LedgerMode::Summary, &mut journal)
                .map_err(|e| e.to_string())?,
        };
        let report = journal.finish().map_err(|e| e.to_string())?;
        println!(
            "journaled {} events over {} rounds to {path} (streamed, replay-validated)",
            report.events, report.settled_rounds
        );
        if report.segments > 0 {
            println!("journal rotated into {} segments", report.segments);
        }
        print_ledger(&scenario, &ledger);
        return Ok(());
    }

    let ledger = match cdt_obs::observer_for_run("cmab-hs") {
        Some(mut round_obs) => mech
            .run_with_mode_observed(&observer, &mut rng, LedgerMode::Summary, &mut round_obs)
            .map_err(|e| e.to_string())?,
        None => mech
            .run_with_mode(&observer, &mut rng, LedgerMode::Summary)
            .map_err(|e| e.to_string())?,
    };
    print_ledger(&scenario, &ledger);
    if let Some(path) = flags.get("json") {
        let json = serde_json::to_string_pretty(&ledger)
            .map_err(|e| format!("serialization failed: {e}"))?;
        std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("ledger written to {path}");
    }
    Ok(())
}

/// `cdt budget` — budget-constrained trading: stop when the consumer's
/// spend ceiling binds.
///
/// # Errors
/// Returns a message on flag or run failure.
pub fn budget(flags: &FlagMap) -> Result<(), String> {
    let obs = obs_begin(flags)?;
    let result = budget_inner(flags);
    let finish = obs_finish(obs);
    result?;
    finish
}

fn budget_inner(flags: &FlagMap) -> Result<(), String> {
    apply_lanes(flags)?;
    let cap = flags
        .get("budget")
        .ok_or("--budget is required")?
        .parse::<f64>()
        .map_err(|_| "--budget expects a number".to_owned())?;
    let (scenario, mut rng, _) = scenario_from_flags(flags)?;
    let mut mech = BudgetedCmabHs::new(scenario.config.clone(), cap).map_err(|e| e.to_string())?;

    // With --journal, stream every *settled* round through the protocol
    // sink; the budget-rejected final round never reaches the callback,
    // so the journal records exactly what the consumer paid for.
    let run = if let Some(path) = flags.get("journal") {
        let rotation = journal_rotation(flags)?;
        let mut sink =
            cdt_protocol::JournalSink::create_with(path, rotation).map_err(|e| e.to_string())?;
        sink.append(&cdt_protocol::MarketEvent::JobPublished {
            job: scenario.config.job.clone(),
        })
        .map_err(|e| e.to_string())?;
        let mut journal_err: Option<String> = None;
        let run = mech
            .run_with(&scenario.observer(), &mut rng, |outcome| {
                if journal_err.is_some() {
                    return;
                }
                for event in cdt_protocol::events_for_round(outcome) {
                    if let Err(e) = sink.append(&event) {
                        journal_err = Some(e.to_string());
                        return;
                    }
                }
            })
            .map_err(|e| e.to_string())?;
        if let Some(e) = journal_err {
            return Err(e);
        }
        let rounds = sink.state().settled_rounds();
        sink.append(&cdt_protocol::MarketEvent::JobCompleted { rounds })
            .map_err(|e| e.to_string())?;
        let report = sink.finish().map_err(|e| e.to_string())?;
        println!(
            "journaled {} events over {} rounds to {path} (streamed, replay-validated)",
            report.events, report.settled_rounds
        );
        if report.segments > 0 {
            println!("journal rotated into {} segments", report.segments);
        }
        run
    } else {
        mech.run(&scenario.observer(), &mut rng)
            .map_err(|e| e.to_string())?
    };
    println!(
        "budgeted run: {} rounds, spent {:.1} of {:.1} ({})",
        run.ledger.rounds(),
        run.spent,
        cap,
        match run.stop_reason {
            StopReason::HorizonReached => "horizon reached",
            StopReason::BudgetExhausted => "budget exhausted",
        }
    );
    println!(
        "observed revenue {:.1}, mean PoC {:.2}",
        run.ledger.total_observed_revenue(),
        run.ledger.mean_consumer_profit()
    );
    Ok(())
}

/// `cdt compare` — the paper's policy comparison (optionally replicated).
///
/// # Errors
/// Returns a message on flag or run failure.
pub fn compare(flags: &FlagMap) -> Result<(), String> {
    apply_threads(flags)?;
    let obs = obs_begin(flags)?;
    // Comparison runs funnel through `run_policy`, which picks up the
    // installed pipeline on its own — no further wiring needed here.
    let result = compare_inner(flags);
    let finish = obs_finish(obs);
    result?;
    finish
}

fn compare_inner(flags: &FlagMap) -> Result<(), String> {
    let reps = flags.usize_or("reps", 1)?;
    if reps > 1 {
        let m = flags.usize_or("m", 300)?;
        let k = flags.usize_or("k", 10)?;
        let l = flags.usize_or("l", 10)?;
        let n = flags.usize_or("n", 2_000)?;
        let seed = flags.u64_or("seed", 20_210_419)?;
        let runs = replicate(m, k, l, n, &PolicySpec::paper_set(), reps, seed)
            .map_err(|e| e.to_string())?;
        println!(
            "{}",
            replication_table(&format!("policy comparison ({reps} replications)"), &runs)
        );
        return Ok(());
    }
    let (scenario, _, seed) = scenario_from_flags(flags)?;
    let cmp = compare_policies(&scenario, &PolicySpec::paper_set(), seed, &[])
        .map_err(|e| e.to_string())?;
    println!("{}", cmp.summary_table("policy comparison"));
    Ok(())
}

/// `cdt sweep` — a grid sweep over one axis (`k`, `m`, or `n`) run as a
/// single cell-packed job stream on the lockstep SoA engine.
///
/// Every (grid point × replication) pair is one scenario cell and every
/// (cell × policy) pair one [`CellJob`]; with `--batch B` above 1,
/// same-shape jobs pack into lockstep groups of up to `B` lanes with
/// ragged tails coalesced across cells. The tables printed are a pure
/// function of the per-job results, so output is bit-for-bit identical at
/// any batch × chunk × threads × lanes configuration.
///
/// # Errors
/// Returns a message on flag or run failure.
pub fn sweep(flags: &FlagMap) -> Result<(), String> {
    apply_threads(flags)?;
    let obs = obs_begin(flags)?;
    let result = sweep_inner(flags);
    let finish = obs_finish(obs);
    result?;
    finish
}

fn sweep_inner(flags: &FlagMap) -> Result<(), String> {
    let axis = flags.get("axis").ok_or("--axis k|m|n is required")?;
    if !matches!(axis, "k" | "m" | "n") {
        return Err(format!("--axis must be k, m, or n, got `{axis}`"));
    }
    let grid = flags
        .get("grid")
        .ok_or("--grid V1,V2,... is required")?
        .split(',')
        .map(|s| {
            s.trim()
                .parse::<usize>()
                .map_err(|_| format!("--grid expects comma-separated integers, got `{s}`"))
        })
        .collect::<Result<Vec<usize>, String>>()?;
    let m = flags.usize_or("m", 300)?;
    let k = flags.usize_or("k", 10)?;
    let l = flags.usize_or("l", 10)?;
    let n = flags.usize_or("n", 2_000)?;
    let reps = flags.usize_or("reps", 1)?;
    if reps == 0 {
        return Err("--reps must be at least 1".into());
    }
    let seed = flags.u64_or("seed", 20_210_419)?;
    let specs = PolicySpec::paper_set();

    // One fresh scenario per (grid point × replication) cell; the swept
    // axis value replaces the corresponding fixed flag.
    let mut scenarios = Vec::with_capacity(grid.len() * reps);
    for (i, &g) in grid.iter().enumerate() {
        let (gm, gk, gn) = match axis {
            "k" => (m, g, n),
            "m" => (g, k, n),
            _ => (m, k, g),
        };
        for rep in 0..reps {
            let mut rng = StdRng::seed_from_u64(mix_seed(mix_seed(seed, i as u64), rep as u64));
            scenarios.push(
                Scenario::paper_defaults(gm, gk, l, gn, &mut rng).map_err(|e| e.to_string())?,
            );
        }
    }

    // The whole grid as one cell-major job stream: cell c = grid point
    // i × replication rep, one job per policy inside each cell. Each job
    // owns its mix_seed-derived RNG stream, so packing is scheduling only.
    let mut jobs: Vec<CellJob> = Vec::with_capacity(scenarios.len() * specs.len());
    for (c, scenario) in scenarios.iter().enumerate() {
        let (i, rep) = (c / reps, c % reps);
        for (j, &spec) in specs.iter().enumerate() {
            jobs.push(CellJob {
                cell: c as u64,
                scenario,
                spec,
                seed: mix_seed(mix_seed(mix_seed(seed, i as u64), rep as u64), 1 + j as u64),
            });
        }
    }
    let (results, stats) = run_cells_observed(&jobs, &[]).map_err(|e| e.to_string())?;

    let axis_label = axis.to_uppercase();
    let x: Vec<f64> = grid.iter().map(|&g| g as f64).collect();
    let per = specs.len();
    let mean = |metric: &dyn Fn(&RunResult) -> f64, i: usize, j: usize| -> f64 {
        (0..reps)
            .map(|rep| metric(&results[(i * reps + rep) * per + j]))
            .sum::<f64>()
            / reps as f64
    };
    let mut revenue = Vec::new();
    let mut regret = Vec::new();
    for (j, spec) in specs.iter().enumerate() {
        let label = spec.label();
        let rev: Vec<f64> = (0..grid.len())
            .map(|i| mean(&|r: &RunResult| r.expected_revenue, i, j))
            .collect();
        let reg: Vec<f64> = (0..grid.len())
            .map(|i| mean(&|r: &RunResult| r.regret, i, j))
            .collect();
        revenue.push(Series::new(label.clone(), x.clone(), rev));
        regret.push(Series::new(label, x.clone(), reg));
    }
    println!(
        "{}",
        Series::tabulate(
            &format!("sweep: total revenue vs {axis_label} (mean of {reps} reps)"),
            &axis_label,
            &revenue
        )
    );
    println!(
        "{}",
        Series::tabulate(
            &format!("sweep: regret vs {axis_label} (mean of {reps} reps)"),
            &axis_label,
            &regret
        )
    );
    // Packing stats vary with --batch (they describe scheduling, not
    // results), so they stay behind --obs-summary to keep the default
    // stdout a pure function of the results.
    if flags.is_set("obs-summary") {
        println!(
            "cell packing: {} lanes over {} groups ({} coalesced), mean occupancy {:.2}",
            stats.lanes, stats.groups, stats.coalesced_groups, stats.mean_occupancy
        );
    }
    Ok(())
}

/// `cdt game` — solve one round's Stackelberg game, verify the SE, report
/// welfare efficiency.
///
/// # Errors
/// Returns a message on flag or construction failure.
pub fn game(flags: &FlagMap) -> Result<(), String> {
    let omega = flags.f64_or("omega", 1000.0)?;
    let theta = flags.f64_or("theta", 0.1)?;
    let _k = flags.usize_or("k", 10)?;
    let ctx = game_curves::round_context(Scale::Paper, omega, theta).map_err(|e| e.to_string())?;
    let eq = solve_equilibrium(&ctx);
    println!(
        "equilibrium (K = {}, omega = {omega}, theta = {theta}):",
        ctx.k()
    );
    println!("  p^J* = {:.4}", eq.service_price);
    println!("  p*   = {:.4}", eq.collection_price);
    println!("  total sensing time = {:.4}", eq.total_sensing_time());
    println!(
        "  PoC = {:.2}, PoP = {:.2}, sum PoS = {:.2}",
        eq.profits.consumer,
        eq.profits.platform,
        eq.profits.total_seller()
    );
    let report = verify_equilibrium(&ctx, &eq, 2000, 1e-3 * eq.profits.consumer.abs());
    println!(
        "  Stackelberg equilibrium verified: {} (max deviation gain {:.3e})",
        report.is_equilibrium(),
        report.max_gain()
    );
    let w = welfare_report(&ctx, &eq);
    println!(
        "  welfare: equilibrium {:.2} / first-best {:.2} (efficiency {:.1}%)",
        w.equilibrium_welfare,
        w.efficient_welfare,
        100.0 * w.efficiency()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse_flags;

    fn flags(args: &[&str]) -> FlagMap {
        parse_flags(&args.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>()).unwrap()
    }

    // The observability pipeline is process-wide; serialize the tests that
    // install one so neither tears the other's sink down mid-run.
    static OBS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    // The lane configuration is process-wide too; serialize the tests that
    // override it (or that assert bit-identity across runs) so a
    // concurrently running `--fast-math` test cannot leak into them.
    static LANE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn run_small_mechanism() {
        run_mechanism(&flags(&["--m", "10", "--k", "3", "--l", "4", "--n", "20"])).unwrap();
    }

    #[test]
    fn run_with_journal_writes_valid_log() {
        let dir = std::env::temp_dir().join("cdt_cli_journal_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.jsonl");
        let path_str = path.to_str().unwrap();
        run_mechanism(&flags(&[
            "--m",
            "6",
            "--k",
            "2",
            "--l",
            "3",
            "--n",
            "8",
            "--journal",
            path_str,
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let log = cdt_protocol::EventLog::from_json_lines(&text).unwrap();
        assert!(log.state().is_completed());
        assert_eq!(log.state().settled_rounds(), 8);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn budget_with_journal_streams_valid_log() {
        let dir = std::env::temp_dir().join("cdt_cli_budget_journal_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("budget-journal.jsonl");
        let path_str = path.to_str().unwrap();
        budget(&flags(&[
            "--m",
            "8",
            "--k",
            "2",
            "--l",
            "3",
            "--n",
            "200",
            "--budget",
            "50",
            "--journal",
            path_str,
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let log = cdt_protocol::EventLog::from_json_lines(&text).unwrap();
        assert!(log.state().is_completed());
        // The cap binds before the horizon; only settled rounds are
        // journaled, so the budget-rejected final round is absent.
        let settled = log.state().settled_rounds();
        assert!((1..200).contains(&settled), "settled {settled}");
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn journal_commands_verify_audit_and_recover() {
        let dir = std::env::temp_dir().join("cdt_cli_journal_cmds_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.jsonl");
        let path_str = path.to_str().unwrap();
        run_mechanism(&flags(&[
            "--m",
            "6",
            "--k",
            "2",
            "--l",
            "3",
            "--n",
            "4",
            "--journal",
            path_str,
        ]))
        .unwrap();
        journal_verify_cmd(path_str, &flags(&[])).unwrap();
        journal_audit_cmd(path_str, &flags(&[])).unwrap();

        // Simulate a crash: keep two settled rounds, two in-flight events,
        // and a torn half-written line.
        let text = std::fs::read_to_string(&path).unwrap();
        let mut cut = String::new();
        for line in text.lines().take(1 + 2 * 5 + 2) {
            cut.push_str(line);
            cut.push('\n');
        }
        cut.push_str(&text.lines().nth(13).unwrap()[..10]);
        let partial = dir.join("journal.jsonl.partial");
        std::fs::write(&partial, cut).unwrap();
        let partial_str = partial.to_str().unwrap();
        assert!(journal_verify_cmd(partial_str, &flags(&[])).is_err());
        let out = dir.join("recovered.jsonl");
        // A crashed previous test run may have left the out file behind;
        // recover refuses to overwrite, so clear it first.
        std::fs::remove_file(&out).ok();
        journal_recover_cmd(partial_str, Some(out.to_str().unwrap()), &flags(&[])).unwrap();
        let recovered = std::fs::read_to_string(&out).unwrap();
        let log = cdt_protocol::EventLog::from_json_lines(&recovered).unwrap();
        assert_eq!(log.state().settled_rounds(), 2);

        // Satellite regression: a second recover to the same --out must
        // refuse rather than clobber the file just written.
        let err =
            journal_recover_cmd(partial_str, Some(out.to_str().unwrap()), &flags(&[])).unwrap_err();
        assert!(err.contains("refusing to overwrite"), "{err}");
        assert_eq!(std::fs::read_to_string(&out).unwrap(), recovered);
        std::fs::remove_file(path).unwrap();
        std::fs::remove_file(partial).unwrap();
        std::fs::remove_file(out).unwrap();
    }

    #[test]
    fn journal_recover_rejects_prefix_longer_than_source() {
        let dir = std::env::temp_dir().join("cdt_cli_recover_race_test");
        std::fs::create_dir_all(&dir).unwrap();
        // Write a journal whose floats use compact spellings (`2e1`) that
        // reserialize longer (`20.0`): the canonical recovered prefix is
        // then longer than the source file, exactly the signature of a
        // source that shrank mid-read (truncation race), and --out must
        // refuse it.
        let mut log = cdt_protocol::EventLog::new();
        log.append(cdt_protocol::MarketEvent::JobPublished {
            job: cdt_types::JobSpec::new(4, 2, 10.0).unwrap(),
        })
        .unwrap();
        log.append(cdt_protocol::MarketEvent::SellersSelected {
            round: cdt_types::Round(0),
            sellers: vec![cdt_types::SellerId(0), cdt_types::SellerId(1)],
        })
        .unwrap();
        log.append(cdt_protocol::MarketEvent::StrategyDetermined {
            round: cdt_types::Round(0),
            service_price: 4.0,
            collection_price: 1.5,
            sensing_times: vec![2.0, 3.0],
        })
        .unwrap();
        log.append(cdt_protocol::MarketEvent::DataCollected {
            round: cdt_types::Round(0),
            observed_revenue: 5.5,
        })
        .unwrap();
        log.append(cdt_protocol::MarketEvent::StatisticsDelivered {
            round: cdt_types::Round(0),
        })
        .unwrap();
        log.append(cdt_protocol::MarketEvent::PaymentsSettled {
            round: cdt_types::Round(0),
            consumer_payment: 20.0,
            seller_payments: vec![3.0, 4.5],
        })
        .unwrap();
        let text = log.to_json_lines().replace("20.0", "2e1");
        assert!(text.contains("2e1"), "compact spelling must land: {text}");
        let src = dir.join("compact-floats.jsonl");
        std::fs::write(&src, text).unwrap();
        let out = dir.join("recovered.jsonl");
        std::fs::remove_file(&out).ok();
        let err = journal_recover_cmd(
            src.to_str().unwrap(),
            Some(out.to_str().unwrap()),
            &flags(&[]),
        )
        .unwrap_err();
        assert!(err.contains("truncation race"), "{err}");
        assert!(!out.exists(), "refused output must not be written");
        std::fs::remove_file(src).unwrap();
    }

    #[test]
    fn journal_segment_rotation_end_to_end() {
        let _guard = LANE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let dir = std::env::temp_dir().join("cdt_cli_journal_segments_test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let seg = dir.join("seg.jsonl");
        let flat = dir.join("flat.jsonl");
        let scenario = ["--m", "6", "--k", "2", "--l", "3", "--n", "6"];
        let with = |extra: &[&str]| {
            let mut args: Vec<&str> = scenario.to_vec();
            args.extend_from_slice(extra);
            flags(&args)
        };
        run_mechanism(&with(&["--journal", flat.to_str().unwrap()])).unwrap();
        run_mechanism(&with(&[
            "--journal",
            seg.to_str().unwrap(),
            "--journal-segment-rounds",
            "2",
        ]))
        .unwrap();
        // Rotation writes segments + index, never the base file.
        assert!(!seg.exists());
        assert!(dir.join("seg.jsonl.idx").exists());
        let seg_str = seg.to_str().unwrap();
        journal_verify_cmd(seg_str, &flags(&[])).unwrap();
        journal_audit_cmd(seg_str, &flags(&[])).unwrap();
        journal_seek_cmd(seg_str, &flags(&["--round", "3"])).unwrap();
        // Same scenario, same seed: segmented vs single-file must diff to
        // exactly zero — and still after compaction folds the prefix.
        journal_diff_cmd(seg_str, flat.to_str().unwrap(), &flags(&[])).unwrap();
        journal_compact_cmd(seg_str, &flags(&["--keep-segments", "1"])).unwrap();
        journal_verify_cmd(seg_str, &flags(&[])).unwrap();
        journal_diff_cmd(seg_str, flat.to_str().unwrap(), &flags(&[])).unwrap();
        journal_seek_cmd(seg_str, &flags(&["--round", "1"])).unwrap();
        // The recovered prefix of a compacted history has no flat-journal
        // serialization; --out must refuse.
        let out = dir.join("out.jsonl");
        let err =
            journal_recover_cmd(seg_str, Some(out.to_str().unwrap()), &flags(&[])).unwrap_err();
        assert!(err.contains("compacted journal"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn journal_rotation_flag_rejects_bad_values() {
        assert!(journal_rotation(&flags(&[])).unwrap().is_none());
        assert_eq!(
            journal_rotation(&flags(&["--journal-segment-rounds", "3"]))
                .unwrap()
                .unwrap()
                .segment_rounds,
            3
        );
        assert!(journal_rotation(&flags(&["--journal-segment-rounds", "0"])).is_err());
        assert!(journal_rotation(&flags(&["--journal-segment-rounds", "lots"])).is_err());
    }

    #[test]
    fn journal_seek_requires_round() {
        let err = journal_seek_cmd("/nonexistent/missing.jsonl", &flags(&[])).unwrap_err();
        assert!(err.contains("--round"), "{err}");
        assert!(journal_seek_cmd("/nonexistent/missing.jsonl", &flags(&["--round", "0"])).is_err());
    }

    #[test]
    fn journal_compact_rejects_single_file_journals() {
        let dir = std::env::temp_dir().join("cdt_cli_compact_flat_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("flat.jsonl");
        std::fs::write(&p, "").unwrap();
        let err = journal_compact_cmd(p.to_str().unwrap(), &flags(&[])).unwrap_err();
        assert!(err.contains("nothing to compact"), "{err}");
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn journal_commands_missing_file_errors() {
        let f = flags(&[]);
        assert!(journal_verify_cmd("/nonexistent/definitely/missing.jsonl", &f).is_err());
        assert!(journal_audit_cmd("/nonexistent/definitely/missing.jsonl", &f).is_err());
        assert!(journal_recover_cmd("/nonexistent/definitely/missing.jsonl", None, &f).is_err());
    }

    #[test]
    fn compare_small() {
        compare(&flags(&["--m", "10", "--k", "3", "--l", "4", "--n", "30"])).unwrap();
    }

    #[test]
    fn compare_with_explicit_threads() {
        compare(&flags(&[
            "--m",
            "10",
            "--k",
            "3",
            "--l",
            "4",
            "--n",
            "30",
            "--threads",
            "2",
        ]))
        .unwrap();
        // Reset the global override so other tests see the default.
        cdt_sim::set_thread_override(None);
    }

    #[test]
    fn compare_rejects_zero_threads() {
        assert!(compare(&flags(&["--m", "10", "--threads", "0"])).is_err());
    }

    #[test]
    fn compare_with_explicit_chunk() {
        compare(&flags(&[
            "--m",
            "10",
            "--k",
            "3",
            "--l",
            "4",
            "--n",
            "30",
            "--threads",
            "2",
            "--chunk",
            "4",
        ]))
        .unwrap();
        // Reset the global overrides so other tests see the defaults.
        cdt_sim::set_thread_override(None);
        cdt_sim::set_chunk_override(None);
    }

    #[test]
    fn compare_rejects_zero_chunk() {
        assert!(compare(&flags(&["--m", "10", "--chunk", "0"])).is_err());
        assert!(compare(&flags(&["--m", "10", "--chunk", "many"])).is_err());
    }

    #[test]
    fn compare_with_explicit_batch() {
        compare(&flags(&[
            "--m", "8", "--k", "2", "--l", "3", "--n", "20", "--reps", "3", "--batch", "2",
        ]))
        .unwrap();
        // Reset the global override so other tests see the default.
        cdt_sim::set_batch_override(None);
    }

    #[test]
    fn compare_rejects_zero_batch() {
        assert!(compare(&flags(&["--m", "10", "--batch", "0"])).is_err());
        assert!(compare(&flags(&["--m", "10", "--batch", "wide"])).is_err());
    }

    #[test]
    fn lanes_flag_rejects_unsupported_widths() {
        let err = compare(&flags(&["--m", "10", "--lanes", "3"])).unwrap_err();
        assert!(err.contains("--lanes must be one of"), "{err}");
        assert!(compare(&flags(&["--m", "10", "--lanes", "0"])).is_err());
        assert!(compare(&flags(&["--m", "10", "--lanes", "wide"])).is_err());
    }

    #[test]
    fn run_with_lanes_and_fast_math_flags() {
        let _guard = LANE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        run_mechanism(&flags(&[
            "--m",
            "10",
            "--k",
            "3",
            "--l",
            "4",
            "--n",
            "20",
            "--lanes",
            "4",
            "--fast-math",
        ]))
        .unwrap();
        assert_eq!(cdt_types::lanes::lane_width(), 4);
        assert!(cdt_types::lanes::fast_math());
        // Reset the global overrides so other tests see the defaults.
        cdt_sim::set_lanes_override(None);
        cdt_sim::set_fast_math_override(None);
        cdt_sim::sync_lane_config();
    }

    #[test]
    fn compare_with_engine_flag_routes_through_resident_runtime() {
        // Serialize with the lane lock: the engine override is process
        // state, like the lane configuration (results are bit-identical
        // either way, but other tests assert on the default routing).
        let _guard = LANE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        compare(&flags(&[
            "--m",
            "8",
            "--k",
            "2",
            "--l",
            "3",
            "--n",
            "20",
            "--reps",
            "2",
            "--engine",
            "--engine-gather-us",
            "100",
        ]))
        .unwrap();
        assert!(cdt_sim::configured_engine());
        assert_eq!(cdt_sim::configured_engine_gather_us(), 100);
        // Reset the global overrides so other tests see the defaults.
        cdt_sim::set_engine_override(None);
        cdt_sim::set_engine_gather_override(None);
    }

    #[test]
    fn engine_gather_flag_rejects_garbage() {
        assert!(compare(&flags(&["--m", "10", "--engine-gather-us", "soon"])).is_err());
        assert!(compare(&flags(&["--m", "10", "--engine-gather-us", "-5"])).is_err());
    }

    #[test]
    fn journal_diff_identical_runs_are_bit_identical() {
        let _guard = LANE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let dir = std::env::temp_dir().join("cdt_cli_journal_diff_test");
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("a.jsonl");
        let b = dir.join("b.jsonl");
        let c = dir.join("c.jsonl");
        let scenario = ["--m", "8", "--k", "2", "--l", "3", "--n", "6"];
        let with = |extra: &[&str]| {
            let mut args: Vec<&str> = scenario.to_vec();
            args.extend_from_slice(extra);
            flags(&args)
        };
        run_mechanism(&with(&["--journal", a.to_str().unwrap()])).unwrap();
        run_mechanism(&with(&["--journal", b.to_str().unwrap()])).unwrap();
        run_mechanism(&with(&["--journal", c.to_str().unwrap(), "--seed", "7"])).unwrap();
        // Same scenario, same seed: settlements must diff to exactly zero.
        journal_diff_cmd(a.to_str().unwrap(), b.to_str().unwrap(), &flags(&[])).unwrap();
        // A different seed diverges and must fail the zero-tolerance diff.
        let err =
            journal_diff_cmd(a.to_str().unwrap(), c.to_str().unwrap(), &flags(&[])).unwrap_err();
        assert!(
            err.contains("diverge") || err.contains("structural"),
            "{err}"
        );
        for p in [a, b, c] {
            std::fs::remove_file(p).unwrap();
        }
    }

    #[test]
    fn journal_diff_rejects_bad_inputs() {
        assert!(
            journal_diff_cmd("/nonexistent/a.jsonl", "/nonexistent/b.jsonl", &flags(&[])).is_err()
        );
        let dir = std::env::temp_dir().join("cdt_cli_journal_diff_tol_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("x.jsonl");
        std::fs::write(&p, "").unwrap();
        let p_str = p.to_str().unwrap();
        let err = journal_diff_cmd(p_str, p_str, &flags(&["--tol", "-1"])).unwrap_err();
        assert!(err.contains("--tol"), "{err}");
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn compare_with_observability_writes_events_and_metrics() {
        let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let dir = std::env::temp_dir().join("cdt_cli_obs_test");
        std::fs::create_dir_all(&dir).unwrap();
        let events = dir.join("events.jsonl");
        let metrics = dir.join("metrics.prom");
        compare(&flags(&[
            "--m",
            "8",
            "--k",
            "2",
            "--l",
            "3",
            "--n",
            "15",
            "--obs-events",
            events.to_str().unwrap(),
            "--metrics-out",
            metrics.to_str().unwrap(),
            "--obs-summary",
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&events).unwrap();
        assert!(!text.is_empty(), "events file must not be empty");
        for line in text.lines() {
            let parsed: serde_json::Value = serde_json::from_str(line).unwrap();
            assert!(parsed.get("event").is_some(), "line missing event tag");
        }
        let prom = std::fs::read_to_string(&metrics).unwrap();
        assert!(prom.contains("cdt_obs_rounds_total"), "got:\n{prom}");
        std::fs::remove_file(events).ok();
        std::fs::remove_file(metrics).ok();
    }

    #[test]
    fn sampled_events_thin_the_trace_and_summarize_offline() {
        let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let dir = std::env::temp_dir().join("cdt_cli_obs_sample_test");
        std::fs::create_dir_all(&dir).unwrap();
        let events = dir.join("events.jsonl");
        run_mechanism(&flags(&[
            "--m",
            "8",
            "--k",
            "2",
            "--l",
            "3",
            "--n",
            "20",
            "--obs-events",
            events.to_str().unwrap(),
            "--obs-events-sample",
            "5",
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&events).unwrap();
        // Rounds 0, 5, 10, 15 of the 20-round run land in the trace.
        let rounds: std::collections::BTreeSet<u64> = text
            .lines()
            .map(|l| {
                let v: serde_json::Value = serde_json::from_str(l).unwrap();
                v["round"].as_u64().unwrap()
            })
            .collect();
        assert_eq!(rounds.into_iter().collect::<Vec<_>>(), vec![0, 5, 10, 15]);
        // The offline summarizer reads the same trace back.
        obs_summarize_cmd(events.to_str().unwrap()).unwrap();
        std::fs::remove_file(events).ok();
    }

    #[test]
    fn obs_summarize_missing_file_errors() {
        assert!(obs_summarize_cmd("/nonexistent/definitely/missing.jsonl").is_err());
    }

    #[test]
    fn compare_replicated() {
        compare(&flags(&[
            "--m", "8", "--k", "2", "--l", "3", "--n", "20", "--reps", "2",
        ]))
        .unwrap();
    }

    #[test]
    fn sweep_over_k_axis() {
        sweep(&flags(&[
            "--axis", "k", "--grid", "2,3", "--m", "8", "--l", "3", "--n", "15",
        ]))
        .unwrap();
    }

    #[test]
    fn sweep_batched_with_reps_and_packing_stats() {
        let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        sweep(&flags(&[
            "--axis",
            "n",
            "--grid",
            "10,20",
            "--m",
            "8",
            "--k",
            "2",
            "--l",
            "3",
            "--reps",
            "2",
            "--batch",
            "4",
            "--obs-summary",
        ]))
        .unwrap();
        // Reset the global override so other tests see the default.
        cdt_sim::set_batch_override(None);
    }

    #[test]
    fn sweep_rejects_bad_flags() {
        assert!(sweep(&flags(&["--grid", "1,2"])).is_err());
        assert!(sweep(&flags(&["--axis", "q", "--grid", "1,2"])).is_err());
        assert!(sweep(&flags(&["--axis", "k"])).is_err());
        assert!(sweep(&flags(&["--axis", "k", "--grid", "2,x"])).is_err());
        assert!(sweep(&flags(&["--axis", "k", "--grid", "2,3", "--reps", "0"])).is_err());
    }

    #[test]
    fn budget_command_stops_on_cap() {
        budget(&flags(&[
            "--m", "8", "--k", "2", "--l", "3", "--n", "200", "--budget", "50",
        ]))
        .unwrap();
    }

    #[test]
    fn budget_requires_flag() {
        assert!(budget(&flags(&["--m", "8"])).is_err());
    }

    #[test]
    fn game_solves() {
        game(&flags(&["--omega", "800", "--theta", "0.2"])).unwrap();
    }

    #[test]
    fn trace_generate_and_stats_round_trip() {
        let dir = std::env::temp_dir().join("cdt_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.csv");
        let path_str = path.to_str().unwrap();
        trace_generate(&flags(&[
            "--records",
            "500",
            "--taxis",
            "20",
            "--seed",
            "1",
            "--out",
            path_str,
        ]))
        .unwrap();
        trace_stats_cmd(path_str).unwrap();
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn trace_stats_missing_file_errors() {
        assert!(trace_stats_cmd("/nonexistent/definitely/missing.csv").is_err());
    }

    #[test]
    fn rejects_k_above_m() {
        let err = run_mechanism(&flags(&["--m", "3", "--k", "5", "--n", "5"])).unwrap_err();
        assert!(err.contains("K=5"), "{err}");
    }
}
