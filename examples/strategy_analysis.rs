//! Strategy analysis: the single-round Stackelberg landscapes of
//! Figs. 13–18 — how each party's profit and strategy respond to prices,
//! sensing-time deviations, and cost parameters.
//!
//! Also verifies the Stackelberg Equilibrium directly (Def. 13): no party
//! can gain by unilaterally deviating from `⟨p^{J*}, p*, τ*⟩`.
//!
//! Run with:
//! ```sh
//! cargo run --release -p cdt-sim --example strategy_analysis
//! ```

use cdt_game::{solve_equilibrium, verify_equilibrium};
use cdt_sim::experiments::{game_curves, param_sweeps, Scale};

fn main() -> cdt_types::Result<()> {
    let scale = Scale::Test; // dense-enough curves, instant to compute

    // --- The representative round and its equilibrium. ---
    let ctx = game_curves::round_context(scale, 1000.0, 0.1)?;
    let eq = solve_equilibrium(&ctx);
    println!("=== representative round (K = {} top sellers) ===", ctx.k());
    println!(
        "equilibrium: p^J* = {:.3}, p* = {:.3}, total sensing time = {:.3}",
        eq.service_price,
        eq.collection_price,
        eq.total_sensing_time()
    );
    println!(
        "profits: PoC = {:.2}, PoP = {:.2}, sum PoS = {:.2}\n",
        eq.profits.consumer,
        eq.profits.platform,
        eq.profits.total_seller()
    );

    // --- Def. 13 check: probe 2000 deviations per party. ---
    let report = verify_equilibrium(&ctx, &eq, 2000, 1e-3 * eq.profits.consumer);
    println!(
        "Stackelberg equilibrium verified: {} (max deviation gain {:.3e})\n",
        report.is_equilibrium(),
        report.max_gain()
    );

    // --- The paper's strategy figures. ---
    for tables in [
        game_curves::figure13(scale)?,
        game_curves::figure14(scale)?,
        param_sweeps::figure15(scale)?,
        param_sweeps::figure16(scale)?,
        param_sweeps::figure17(scale)?,
        param_sweeps::figure18(scale)?,
    ] {
        for t in tables {
            println!("{t}");
        }
    }
    Ok(())
}
