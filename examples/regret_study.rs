//! Regret study: runs the paper's comparison set (optimal, CMAB-HS,
//! ε-first, random) plus the extension policies (Thompson, CUCB,
//! ε-greedy) on one scenario, and checks the measured CMAB-HS regret
//! against the closed-form bound of Theorem 19.
//!
//! Run with:
//! ```sh
//! cargo run --release -p cdt-sim --example regret_study
//! ```

use cdt_bandit::{gap_statistics, theoretical_regret_bound};
use cdt_core::Scenario;
use cdt_sim::{compare_policies, PolicySpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> cdt_types::Result<()> {
    let (m, k, l, n) = (60, 8, 6, 5_000);
    let mut rng = StdRng::seed_from_u64(7);
    let scenario = Scenario::paper_defaults(m, k, l, n, &mut rng)?;
    println!("scenario: M = {m}, K = {k}, L = {l}, N = {n}\n");

    let mut specs = PolicySpec::paper_set();
    specs.extend([
        PolicySpec::Thompson,
        PolicySpec::Cucb,
        PolicySpec::EpsilonGreedy(0.1),
    ]);

    let cmp = compare_policies(&scenario, &specs, 99, &[])?;
    println!("{}", cmp.summary_table("policy comparison"));

    // --- Theorem 19: Reg = O(M K^3 ln(NKL)). ---
    let truth = scenario.population.expected_qualities();
    if let Some(gaps) = gap_statistics(&truth, k) {
        let bound = theoretical_regret_bound(n, m, k, l, gaps);
        let measured = cmp.run("CMAB-HS").expect("run exists").regret;
        println!(
            "Theorem 19 bound check (gap delta_min = {:.4}):",
            gaps.delta_min
        );
        println!("  measured CMAB-HS regret: {measured:.1}");
        println!("  closed-form upper bound: {bound:.1}");
        println!(
            "  bound respected: {} (ratio {:.4})",
            measured <= bound,
            measured / bound
        );
    }

    // --- Δ-profits (Fig. 8's metric) ---
    println!("\nper-round profit gaps to the optimal policy:");
    for spec in &specs {
        let name = spec.label();
        if name == "optimal" {
            continue;
        }
        println!(
            "  {:<12} Δ-PoC = {:>9.3}   Δ-PoP = {:>8.3}   Δ-PoS(s) = {:>7.4}",
            name,
            cmp.delta_poc(&name).expect("optimal present"),
            cmp.delta_pop(&name).expect("optimal present"),
            cmp.delta_pos(&name).expect("optimal present"),
        );
    }
    Ok(())
}
