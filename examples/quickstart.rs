//! Quickstart: the paper's illustrative example (Sec. III-D).
//!
//! Three sellers, four PoIs, ten rounds, `K = 2` selected per round.
//! Round 1 is the initial exploration (everyone selected, `τ⁰ = 1`,
//! `p¹* = p_max = 5`, break-even `p^{J,1*}`); every later round selects the
//! top-2 sellers by UCB and plays the three-stage Stackelberg game.
//!
//! Run with:
//! ```sh
//! cargo run --release -p cdt-sim --example quickstart
//! ```

use cdt_core::prelude::*;
use cdt_quality::distribution::QualityModel;
use cdt_quality::{SellerProfile, TruncatedGaussian};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> cdt_types::Result<()> {
    // --- The Sec. III-D cast: three sellers with hidden expected
    // qualities (the platform must learn these). ---
    let hidden_qualities = [0.65, 0.70, 0.55];
    let profiles: Vec<SellerProfile> = hidden_qualities
        .iter()
        .enumerate()
        .map(|(i, &q)| {
            Ok(SellerProfile {
                quality: QualityModel::TruncatedGaussian(TruncatedGaussian::new(q, 0.15)),
                cost: SellerCostParams::new(0.2 + 0.05 * i as f64, 0.3)?,
            })
        })
        .collect::<cdt_types::Result<_>>()?;
    let population = SellerPopulation::from_profiles(profiles);

    let config = SystemConfig::builder()
        .job(JobSpec::new(4, 10, 1e6)?.with_description("take pictures around 4 PoIs, 10 rounds"))
        .sellers(3, 2)
        .seller_costs(population.cost_params())
        .platform_cost(PlatformCostParams::new(0.5, 1.0)?)
        .valuation(ValuationParams::new(100.0)?)
        .collection_price_bounds(PriceBounds::new(0.0, 5.0)?)
        .service_price_bounds(PriceBounds::new(0.0, 50.0)?)
        .build()?;

    let observer = QualityObserver::new(population.clone(), config.l());
    let mut mechanism = CmabHs::new(config)?;
    let mut rng = StdRng::seed_from_u64(2021);

    println!("=== CMAB-HS quickstart: 3 sellers, 4 PoIs, 10 rounds, K = 2 ===\n");
    println!("hidden expected qualities: {hidden_qualities:?}\n");

    while !mechanism.is_finished() {
        let outcome = mechanism.step(&observer, &mut rng)?;
        let sel: Vec<String> = outcome.selected.iter().map(ToString::to_string).collect();
        let taus: Vec<String> = outcome
            .strategy
            .sensing_times
            .iter()
            .map(|t| format!("{t:.3}"))
            .collect();
        println!(
            "round {:>2}: selected <{}>  p^J*={:.3}  p*={:.3}  tau*=[{}]",
            outcome.round.index() + 1,
            sel.join(", "),
            outcome.strategy.service_price,
            outcome.strategy.collection_price,
            taus.join(", "),
        );
        println!(
            "          revenue {:.3} | PoC {:.3} | PoP {:.3} | sum PoS {:.3}",
            outcome.observed_revenue,
            outcome.strategy.profits.consumer,
            outcome.strategy.profits.platform,
            outcome.strategy.profits.total_seller(),
        );
    }

    println!("\nlearned quality estimates after 10 rounds:");
    for i in 0..3 {
        let id = SellerId(i);
        println!(
            "  seller {}: est q = {:.3}  (true q = {:.3}, observed {} times)",
            i + 1,
            mechanism.policy().estimator().mean(id),
            population.profile(id).expected_quality(),
            mechanism.policy().estimator().count(id),
        );
    }
    Ok(())
}
