//! Full pipeline on the synthetic Chicago taxi trace: trace generation →
//! PoI extraction → seller derivation → CMAB-HS trading → settlement
//! summary.
//!
//! Mirrors the paper's evaluation setup (Sec. V-A): a 27 465-record trace,
//! `L = 10` PoIs, up to `M = 300` eligible taxis as data sellers, `K = 10`
//! selected per round.
//!
//! Run with:
//! ```sh
//! cargo run --release -p cdt-sim --example taxi_trading
//! ```

use cdt_core::prelude::*;
use cdt_core::LedgerMode;
use cdt_core::Scenario;
use cdt_trace::{csv, Dataset, TraceConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> cdt_types::Result<()> {
    let mut rng = StdRng::seed_from_u64(20210419);

    // --- 1. The data substrate: a Chicago-style taxi trace. ---
    println!("generating synthetic Chicago taxi trace (27,465 records)...");
    let dataset = Dataset::build(&TraceConfig::paper_scale(), 10, 300, &mut rng);
    println!(
        "  {} records, {} PoIs, {} eligible taxis (sellers)",
        dataset.records.len(),
        dataset.l(),
        dataset.m()
    );
    println!("  hottest PoIs: {:?}", &dataset.pois[..5.min(dataset.l())]);
    let head = csv::to_csv(&dataset.records[..3]);
    println!("  trace head (CSV):\n{}", indent(&head, 4));

    // --- 2. Attach the economic layer (qualities are NOT in the trace —
    // the paper generates them synthetically, and so do we). ---
    let n = 2_000;
    let k = 10;
    let scenario = Scenario::from_dataset(&dataset, k, n, &mut rng)?;
    println!(
        "scenario: M = {}, K = {}, L = {}, N = {}",
        scenario.config.m(),
        scenario.config.k(),
        scenario.config.l(),
        scenario.config.n()
    );

    // --- 3. Trade. ---
    let observer = scenario.observer();
    let mut mechanism = CmabHs::new(scenario.config.clone())?;
    let ledger = mechanism.run_with_mode(&observer, &mut rng, LedgerMode::Summary)?;

    // --- 4. Settlement summary. ---
    println!("\n=== settlement after {} rounds ===", ledger.rounds());
    println!(
        "total observed revenue (sum of collected qualities): {:.1}",
        ledger.total_observed_revenue()
    );
    println!(
        "consumer paid {:.1} total; platform paid sellers {:.1}",
        ledger.total_consumer_payment(),
        ledger.total_seller_payment()
    );
    println!(
        "mean per-round profits: PoC {:.2} | PoP {:.2} | sum PoS {:.2}",
        ledger.mean_consumer_profit(),
        ledger.mean_platform_profit(),
        ledger.mean_seller_profit()
    );

    // --- 5. Did the mechanism find the good sellers? ---
    let ranking = scenario.population.ranking_by_true_quality();
    let truth = scenario.population.expected_qualities();
    println!("\ntrue top-5 sellers vs learned estimates:");
    for &id in ranking.iter().take(5) {
        println!(
            "  {}: true q = {:.3}, learned q = {:.3}, observations = {}",
            id,
            truth[id.index()],
            mechanism.policy().estimator().mean(id),
            mechanism.policy().estimator().count(id)
        );
    }
    Ok(())
}

fn indent(text: &str, spaces: usize) -> String {
    let pad = " ".repeat(spaces);
    text.lines()
        .map(|l| format!("{pad}{l}"))
        .collect::<Vec<_>>()
        .join("\n")
}
