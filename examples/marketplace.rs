//! Marketplace: the consumer-facing view of the CDT system — what the
//! platform actually *delivers* each round (the Def. 2 aggregation
//! service) and how efficient the Stackelberg split is.
//!
//! Runs a short trading job, aggregates every round's observations into
//! the statistics bundle, and closes with a welfare audit of the final
//! round's equilibrium.
//!
//! Run with:
//! ```sh
//! cargo run --release -p cdt-cli --example marketplace
//! ```

use cdt_aggregate::{aggregate_round, StreamingSummary};
use cdt_bandit::{CmabUcbPolicy, SelectionPolicy};
use cdt_core::{execute_round, Scenario};
use cdt_game::{solve_equilibrium, welfare_report, GameContext, SelectedSeller};
use cdt_types::{PriceBounds, Round};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> cdt_types::Result<()> {
    let mut rng = StdRng::seed_from_u64(8);
    let scenario = Scenario::paper_defaults(40, 8, 6, 60, &mut rng)?;
    let observer = scenario.observer();
    let mut policy = CmabUcbPolicy::new(40, 8);

    println!("=== CDT marketplace: 40 sellers, K = 8, L = 6, 60 rounds ===\n");
    let mut job_summary = StreamingSummary::new();

    for t in 0..scenario.config.n() {
        let outcome = execute_round(&mut policy, &scenario.config, &observer, Round(t), &mut rng)?;
        // The deliverable: aggregate a bundle over this round's data.
        let obs = observer.observe_round(&outcome.selected, &mut rng);
        let weights: Vec<f64> = outcome
            .selected
            .iter()
            .map(|&id| policy.game_quality(id).max(1e-6))
            .collect();
        let bundle = aggregate_round(&obs, &weights);
        job_summary.merge(&bundle.overall);

        if t % 15 == 0 {
            println!(
                "round {t:>2}: {} sellers, bundle mean {:.3} (weighted PoI-0 {:.3}), median {:.3}",
                outcome.selected.len(),
                bundle.overall.mean(),
                bundle.per_poi[0].weighted_mean,
                bundle.median().unwrap_or(0.0),
            );
        }
    }

    println!(
        "\njob-level statistics delivered to the consumer:\n  {} readings, mean {:.3}, std {:.3}, range [{:.3}, {:.3}]",
        job_summary.count(),
        job_summary.mean(),
        job_summary.std_dev(),
        job_summary.min().unwrap_or(0.0),
        job_summary.max().unwrap_or(0.0),
    );

    // --- Welfare audit of the final round's game. ---
    let ranking = scenario.population.ranking_by_true_quality();
    let sellers: Vec<SelectedSeller> = ranking
        .iter()
        .take(8)
        .map(|&id| {
            SelectedSeller::new(id, policy.game_quality(id), scenario.config.seller_cost(id))
        })
        .collect();
    let ctx = GameContext::new(
        sellers,
        scenario.config.platform_cost,
        scenario.config.valuation,
        PriceBounds::unbounded(),
        PriceBounds::unbounded(),
        f64::MAX,
    )?;
    let eq = solve_equilibrium(&ctx);
    let audit = welfare_report(&ctx, &eq);
    println!("\nwelfare audit of the converged round:");
    println!(
        "  equilibrium welfare {:.1} vs first-best {:.1} → efficiency {:.1}%",
        audit.equilibrium_welfare,
        audit.efficient_welfare,
        100.0 * audit.efficiency()
    );
    println!(
        "  (the hierarchy's double marginalization costs {:.1} per round)",
        audit.efficient_welfare - audit.equilibrium_welfare
    );
    Ok(())
}
