//! Audited trading: journal a full CMAB-HS run through the Fig. 2
//! workflow protocol, serialize the journal, tamper with it, and watch
//! the replay validation catch the fraud.
//!
//! Run with:
//! ```sh
//! cargo run --release -p cdt-protocol --example audited_trading
//! ```

use cdt_core::{CmabHs, Scenario};
use cdt_protocol::{events_for_round, EventLog, MarketEvent};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> cdt_types::Result<()> {
    let mut rng = StdRng::seed_from_u64(99);
    let scenario = Scenario::paper_defaults(20, 5, 4, 25, &mut rng)?;
    let mut mech = CmabHs::new(scenario.config.clone())?;
    let observer = scenario.observer();

    // --- 1. Trade, journaling every event. ---
    let mut log = EventLog::new();
    log.append(MarketEvent::JobPublished {
        job: scenario.config.job.clone(),
    })
    .expect("fresh log accepts the job");
    let mut rounds = 0;
    while !mech.is_finished() {
        let outcome = mech.step(&observer, &mut rng)?;
        for event in events_for_round(&outcome) {
            log.append(event)
                .expect("mechanism rounds are protocol-legal");
        }
        rounds += 1;
    }
    log.append(MarketEvent::JobCompleted { rounds })
        .expect("all rounds settled");

    println!("=== audited CMAB-HS run: 25 rounds, K = 5 ===\n");
    println!(
        "journal: {} events, {} settled rounds",
        log.len(),
        log.state().settled_rounds()
    );
    println!(
        "audit totals: consumer spent {:.2}, sellers received {:.2}, platform margin+costs {:.2}",
        log.total_consumer_spend(),
        log.total_seller_payout(),
        log.total_consumer_spend() - log.total_seller_payout(),
    );

    // --- 2. Serialize and replay — the honest journal validates. ---
    let journal = log.to_json_lines();
    let replayed = EventLog::from_json_lines(&journal)?;
    println!(
        "\nreplay of the honest journal: OK ({} events)",
        replayed.len()
    );

    // --- 3. Tamper: a dishonest platform edits a settlement downward. ---
    let tampered = journal.replacen(
        "\"consumer_payment\":",
        "\"consumer_payment\":0.5e1,\"x\":",
        1,
    );
    match EventLog::from_json_lines(&tampered) {
        Err(e) => println!("tampered journal rejected, as it must be:\n  {e}"),
        Ok(_) => println!("!! tampered journal was accepted — protocol bug"),
    }

    // --- 4. Reorder: swap two workflow phases. ---
    let mut lines: Vec<&str> = journal.lines().collect();
    lines.swap(2, 3);
    match EventLog::from_json_lines(&lines.join("\n")) {
        Err(e) => println!("reordered journal rejected, as it must be:\n  {e}"),
        Ok(_) => println!("!! reordered journal was accepted — protocol bug"),
    }
    Ok(())
}
