#!/usr/bin/env bash
# CI gate: build, tests, formatting, lints, and an engine-benchmark smoke
# run (emits BENCH_engine.json on a CI-sized workload and fails unless the
# serial and parallel results are bit-for-bit identical).
set -euo pipefail
cd "$(dirname "$0")"

echo "==> build + tests (tier 1)"
cargo build --release
cargo test -q

echo "==> rustfmt"
cargo fmt --check

echo "==> clippy"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> bench_engine smoke (BENCH_engine.json)"
cargo run --release -p cdt-bench --bin bench_engine -- \
    --m 40 --k 5 --l 5 --n 400 --reps 2 --out BENCH_engine.json
test -s BENCH_engine.json

echo "==> ci.sh: all gates passed"
