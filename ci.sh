#!/usr/bin/env bash
# CI gate: build, tests, formatting, lints, and an engine-benchmark smoke
# run (emits BENCH_engine.json on a CI-sized workload and fails unless the
# serial and parallel results are bit-for-bit identical).
set -euo pipefail
cd "$(dirname "$0")"

echo "==> build + tests (tier 1)"
cargo build --release
cargo test -q

echo "==> rustfmt"
cargo fmt --check

echo "==> clippy"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> bench_engine smoke (BENCH_engine.json + results/bench_history.jsonl)"
cargo run --release -p cdt-bench --bin bench_engine -- \
    --m 40 --k 5 --l 5 --n 400 --reps 2 --out BENCH_engine.json
test -s BENCH_engine.json
test -s results/bench_history.jsonl
tail -n 1 results/bench_history.jsonl | python3 -c 'import json,sys; json.loads(sys.stdin.read())'

echo "==> observability smoke (JSONL trace + Prometheus dump)"
rm -f /tmp/cdt_obs_events.jsonl /tmp/cdt_obs_metrics.prom
cargo run --release -p cdt-bench --bin repro -- \
    --exp fig7 --obs-events /tmp/cdt_obs_events.jsonl --metrics-out /tmp/cdt_obs_metrics.prom
test -s /tmp/cdt_obs_events.jsonl
test -s /tmp/cdt_obs_metrics.prom
# Every trace line must be a JSON object; repro already self-validates, so
# this is a belt-and-braces check that the files really landed on disk.
python3 - <<'EOF'
import json
with open("/tmp/cdt_obs_events.jsonl") as f:
    lines = [json.loads(line) for line in f]
assert lines, "no events written"
assert all("event" in obj for obj in lines), "untagged event line"
print(f"obs smoke: {len(lines)} valid events")
EOF
grep -q '^cdt_obs_rounds_total' /tmp/cdt_obs_metrics.prom

echo "==> ci.sh: all gates passed"
