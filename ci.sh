#!/usr/bin/env bash
# CI gate: build, tests, formatting, lints, and an engine-benchmark smoke
# run (emits BENCH_engine.json on a CI-sized workload and fails unless the
# serial and parallel results are bit-for-bit identical).
set -euo pipefail
cd "$(dirname "$0")"

echo "==> build + tests (tier 1)"
cargo build --release
cargo test -q

echo "==> rustfmt"
cargo fmt --check

echo "==> clippy"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> bench_engine smoke + perf gate (BENCH_engine.json vs results/bench_history.jsonl)"
# The gate compares this run's parallel speedup against the median of past
# identical-workload runs in the history (it skips until 3 matching records
# exist); a drop of more than 50% fails the build (exit 1). Exercise a
# pinned chunk with the unbatched path, then adaptive chunking with a
# lockstep batch of 4, then the batched path at a non-default lane width
# and with fast-math reductions — serial-vs-parallel bit-identity must
# hold in all four (lane kernels are deterministic per width and input,
# with or without fast-math, so `identical` never depends on the pool).
for extra in "--chunk 1 --batch 1" "--batch 4" "--batch 4 --lanes 4" "--batch 4 --fast-math"; do
    # shellcheck disable=SC2086  # $extra is a deliberate word-split flag list
    cargo run --release -p cdt-bench --bin bench_engine -- \
        --m 40 --k 5 --l 5 --n 400 --reps 2 --out BENCH_engine.json \
        --gate-tolerance 0.5 $extra
    test -s BENCH_engine.json
    # BENCH_engine.json must parse and carry a sane report: serial +
    # parallel throughput, a positive speedup, and intact bit-identity.
    python3 - <<'EOF'
import json
with open("BENCH_engine.json") as f:
    report = json.load(f)
assert report["identical"] is True, "determinism bug: serial != parallel"
assert report["speedup"] > 0, report["speedup"]
assert report["serial"]["rounds_per_sec"] > 0
assert report["parallel"]["rounds_per_sec"] > 0
print(f"perf smoke: speedup {report['speedup']:.2f}x on "
      f"{report['parallel']['threads']} threads, "
      f"batch {report['workload']['batch']}")
EOF
done
test -s results/bench_history.jsonl
tail -n 1 results/bench_history.jsonl | python3 -c 'import json,sys; json.loads(sys.stdin.read())'

echo "==> sweep cell-packing smoke (batched grid must match the per-cell serial path)"
rm -f /tmp/cdt_sweep_batched.txt /tmp/cdt_sweep_serial.txt
sweep_args="--axis k --grid 2,3 --m 10 --l 3 --n 40 --reps 2"
# shellcheck disable=SC2086  # deliberate word-split flag list
cargo run --release -p cdt-cli --bin cdt -- sweep $sweep_args --batch 4 \
    | tee /tmp/cdt_sweep_batched.txt
# shellcheck disable=SC2086
cargo run --release -p cdt-cli --bin cdt -- sweep $sweep_args --batch 1 \
    > /tmp/cdt_sweep_serial.txt
# Packing is a scheduling change only: sweep stdout is a pure function of
# the results, so batch 4 and the per-cell batch-1 path must be byte-equal.
diff /tmp/cdt_sweep_batched.txt /tmp/cdt_sweep_serial.txt
# bench_engine --sweep times the cell-packed workload against its per-cell
# serial leg: results must stay bit-identical and the packed leg must
# actually share groups (mean occupancy above 1 lane per group).
cargo run --release -p cdt-bench --bin bench_engine -- \
    --sweep --m 10 --k 3 --l 3 --n 80 --reps 4 --batch 4 --out BENCH_engine.json
python3 - <<'EOF'
import json
with open("BENCH_engine.json") as f:
    report = json.load(f)
assert report["workload"]["sweep"] is True
assert report["identical"] is True, "determinism bug: packed sweep != per-cell serial"
occupancy = report["cell_occupancy"]
assert occupancy is not None and occupancy > 1.0, occupancy
print(f"sweep smoke: occupancy {occupancy:.2f} lanes/group, "
      f"speedup {report['speedup']:.2f}x")
EOF

echo "==> resident engine smoke (engine sweep must match the per-call pool byte-for-byte)"
rm -f /tmp/cdt_sweep_engine.txt
# shellcheck disable=SC2086  # deliberate word-split flag list
cargo run --release -p cdt-cli --bin cdt -- sweep $sweep_args --batch 4 --engine \
    > /tmp/cdt_sweep_engine.txt
# The resident engine is a scheduling change only: sweep stdout routed
# through the persistent worker runtime must be byte-equal to the same
# sweep on the per-call pool.
diff /tmp/cdt_sweep_batched.txt /tmp/cdt_sweep_engine.txt
# bench_engine --engine times N back-to-back submissions on a warm
# resident engine against the per-call pool (which re-spawns its workers
# every call): every submission must stay bit-identical to the per-call
# reference, and the report must carry the submit-throughput delta plus
# the gather-window occupancy (also appended to the bench history).
cargo run --release -p cdt-bench --bin bench_engine -- \
    --engine --submissions 4 --m 10 --k 3 --l 3 --n 80 --reps 4 --batch 4 \
    --out BENCH_engine.json
python3 - <<'EOF'
import json
with open("BENCH_engine.json") as f:
    report = json.load(f)
assert report["workload"]["engine"] is True
assert report["identical"] is True, "determinism bug: engine != per-call pool"
delta = report["engine_delta"]
assert delta is not None and delta["submissions"] == 4, delta
assert delta["submit_speedup"] > 0, delta
occupancy = delta["gather_occupancy"]
assert occupancy > 1.0, occupancy
print(f"engine smoke: submit speedup {delta['submit_speedup']:.2f}x, "
      f"gather occupancy {occupancy:.2f} lanes/group")
EOF
tail -n 1 results/bench_history.jsonl \
    | python3 -c 'import json,sys; rec=json.loads(sys.stdin.read()); assert rec["engine"] is True, rec'

echo "==> observability smoke (JSONL trace + Prometheus dump)"
rm -f /tmp/cdt_obs_events.jsonl /tmp/cdt_obs_metrics.prom
cargo run --release -p cdt-bench --bin repro -- \
    --exp fig7 --obs-events /tmp/cdt_obs_events.jsonl --metrics-out /tmp/cdt_obs_metrics.prom
test -s /tmp/cdt_obs_events.jsonl
test -s /tmp/cdt_obs_metrics.prom
# Every trace line must be a JSON object; repro already self-validates, so
# this is a belt-and-braces check that the files really landed on disk.
python3 - <<'EOF'
import json
with open("/tmp/cdt_obs_events.jsonl") as f:
    lines = [json.loads(line) for line in f]
assert lines, "no events written"
assert all("event" in obj for obj in lines), "untagged event line"
print(f"obs smoke: {len(lines)} valid events")
EOF
grep -q '^cdt_obs_rounds_total' /tmp/cdt_obs_metrics.prom

echo "==> cdt obs summarize (offline summary of the smoke trace)"
cargo run --release -p cdt-cli --bin cdt -- obs summarize /tmp/cdt_obs_events.jsonl \
    | tee /tmp/cdt_obs_summary.txt
grep -q '^== observability summary ==' /tmp/cdt_obs_summary.txt
grep -q '^rounds: ' /tmp/cdt_obs_summary.txt
grep -q '^throughput: ' /tmp/cdt_obs_summary.txt

echo "==> span tracing smoke (flame + critical path over a traced run)"
rm -f /tmp/cdt_obs_spans.jsonl
cargo run --release -p cdt-cli --bin cdt -- run \
    --m 10 --k 3 --l 4 --n 40 --obs-events /tmp/cdt_obs_spans.jsonl --obs-spans
test -s /tmp/cdt_obs_spans.jsonl
grep -q '"event":"span"' /tmp/cdt_obs_spans.jsonl
cargo run --release -p cdt-cli --bin cdt -- obs flame /tmp/cdt_obs_spans.jsonl \
    | tee /tmp/cdt_obs_flame.txt
# The flame report must reconcile exactly: Σ exclusive == root inclusive.
grep -q '\[root run: inclusive \(.*\) == exclusive-sum \1\]' /tmp/cdt_obs_flame.txt
cargo run --release -p cdt-cli --bin cdt -- obs critical-path /tmp/cdt_obs_spans.jsonl \
    | tee /tmp/cdt_obs_critical.txt
test -s /tmp/cdt_obs_critical.txt

echo "==> watchdog smoke (a 1 ns slow-round floor must page)"
rm -f /tmp/cdt_obs_watchdog.jsonl
cargo run --release -p cdt-cli --bin cdt -- run \
    --m 10 --k 3 --l 4 --n 40 --obs-events /tmp/cdt_obs_watchdog.jsonl \
    --watchdog-ms 1 --watchdog-slow-round-ns 1
grep -c '"event":"health"' /tmp/cdt_obs_watchdog.jsonl \
    | python3 -c 'import sys; n=int(sys.stdin.read()); assert n>=1, "watchdog emitted no health events"; print(f"watchdog smoke: {n} health events")'

echo "==> protocol journal smoke (stream, verify, truncate mid-round, recover)"
rm -f /tmp/cdt_journal.jsonl /tmp/cdt_journal.jsonl.partial \
    /tmp/cdt_journal_torn.jsonl /tmp/cdt_journal_recovered.jsonl
cargo run --release -p cdt-cli --bin cdt -- run \
    --m 8 --k 2 --l 3 --n 6 --journal /tmp/cdt_journal.jsonl
test -s /tmp/cdt_journal.jsonl
# The finished journal is published by atomic rename: no .partial remains.
test ! -e /tmp/cdt_journal.jsonl.partial
cargo run --release -p cdt-cli --bin cdt -- journal verify /tmp/cdt_journal.jsonl
cargo run --release -p cdt-cli --bin cdt -- journal audit /tmp/cdt_journal.jsonl \
    | tee /tmp/cdt_journal_audit.txt
grep -q '^consumer paid:' /tmp/cdt_journal_audit.txt
# Simulate a killed run: keep JobPublished + 4 settled rounds + 2 in-flight
# events of round 4 (1 + 4*5 + 2 = 23 lines). Strict verify must reject the
# torn tail; recover must keep exactly the 4-round settled prefix, and the
# recovered prefix must itself verify.
head -n 23 /tmp/cdt_journal.jsonl > /tmp/cdt_journal_torn.jsonl
if cargo run --release -p cdt-cli --bin cdt -- journal verify /tmp/cdt_journal_torn.jsonl; then
    echo "ERROR: strict verify accepted a mid-round-truncated journal" >&2
    exit 1
fi
cargo run --release -p cdt-cli --bin cdt -- journal recover /tmp/cdt_journal_torn.jsonl \
    --out /tmp/cdt_journal_recovered.jsonl | tee /tmp/cdt_journal_recover.txt
grep -q 'recovered 4 settled rounds' /tmp/cdt_journal_recover.txt
grep -q 'mid-round' /tmp/cdt_journal_recover.txt
cargo run --release -p cdt-cli --bin cdt -- journal verify /tmp/cdt_journal_recovered.jsonl

echo "==> journal rotation smoke (segments, compaction checkpoint, seek)"
rm -f /tmp/cdt_journal_seg.jsonl /tmp/cdt_journal_seg.jsonl.seg-* \
    /tmp/cdt_journal_seg.jsonl.idx /tmp/cdt_journal_seg.jsonl.ckpt-*
# Same scenario and seed as the single-file smoke above: rotation is a
# file-layout change only, so the sealed segments must concatenate to the
# exact bytes of /tmp/cdt_journal.jsonl. 6 rounds at 2 rounds/segment is
# segs 0-1, 2-3, 4-5, plus the JobCompleted tail segment: 4 segments.
cargo run --release -p cdt-cli --bin cdt -- run \
    --m 8 --k 2 --l 3 --n 6 --journal /tmp/cdt_journal_seg.jsonl \
    --journal-segment-rounds 2 | tee /tmp/cdt_journal_seg_run.txt
grep -q 'journal rotated into 4 segments' /tmp/cdt_journal_seg_run.txt
# Rotation roots the journal at the index — no base file appears…
test ! -e /tmp/cdt_journal_seg.jsonl
test -s /tmp/cdt_journal_seg.jsonl.idx
# …and cat(segments) == the single-file journal, byte for byte.
cat /tmp/cdt_journal_seg.jsonl.seg-* | cmp - /tmp/cdt_journal.jsonl
cargo run --release -p cdt-cli --bin cdt -- journal verify /tmp/cdt_journal_seg.jsonl \
    | tee /tmp/cdt_journal_seg_verify.txt
grep -q 'segments: 4 sealed' /tmp/cdt_journal_seg_verify.txt
# Settlements must diff to exactly zero against the single-file run, and a
# point lookup must replay only the one segment holding the round.
cargo run --release -p cdt-cli --bin cdt -- journal diff \
    /tmp/cdt_journal.jsonl /tmp/cdt_journal_seg.jsonl
cargo run --release -p cdt-cli --bin cdt -- journal seek /tmp/cdt_journal_seg.jsonl \
    --round 3 | tee /tmp/cdt_journal_seek.txt
grep -q 'served from segment 1' /tmp/cdt_journal_seek.txt
# Fold the first two segments (rounds 0-3) into a checkpoint: verify,
# diff-vs-uncompacted, and seek must all answer exactly as before.
cargo run --release -p cdt-cli --bin cdt -- journal compact /tmp/cdt_journal_seg.jsonl \
    --keep-segments 2 | tee /tmp/cdt_journal_compact.txt
grep -q 'into checkpoint generation 1' /tmp/cdt_journal_compact.txt
grep -q 'checkpoint now covers 4 rounds' /tmp/cdt_journal_compact.txt
test ! -e /tmp/cdt_journal_seg.jsonl.seg-0000
cargo run --release -p cdt-cli --bin cdt -- journal verify /tmp/cdt_journal_seg.jsonl
cargo run --release -p cdt-cli --bin cdt -- journal diff \
    /tmp/cdt_journal.jsonl /tmp/cdt_journal_seg.jsonl
cargo run --release -p cdt-cli --bin cdt -- journal seek /tmp/cdt_journal_seg.jsonl \
    --round 1 | tee /tmp/cdt_journal_seek.txt
grep -q 'served from checkpoint ledger' /tmp/cdt_journal_seek.txt
cargo run --release -p cdt-cli --bin cdt -- journal seek /tmp/cdt_journal_seg.jsonl \
    --round 5 | tee /tmp/cdt_journal_seek.txt
grep -q 'served from segment 2' /tmp/cdt_journal_seek.txt
# Recovery resumes from the checkpoint and still sees all 6 rounds.
cargo run --release -p cdt-cli --bin cdt -- journal recover /tmp/cdt_journal_seg.jsonl \
    | tee /tmp/cdt_journal_seg_recover.txt
grep -q 'recovered 6 settled rounds' /tmp/cdt_journal_seg_recover.txt
grep -q 'resumed from checkpoint: 4 rounds' /tmp/cdt_journal_seg_recover.txt

echo "==> journal diff smoke (lane-kernel divergence validator)"
# L=10 exceeds the widest lane (8), so fast-math genuinely reassociates
# the row reductions; K=5 sellers keep the run fast. Deterministic runs
# must diff to exactly zero at *any* lane width; a fast-math run must stay
# within the documented reassociation bound; runs of different scenarios
# must fail the diff (nonzero exit).
rm -f /tmp/cdt_diff_{a,b,c,d}.jsonl
diff_scenario="--m 20 --k 5 --l 10 --n 6"
# shellcheck disable=SC2086  # deliberate word-split flag list
cargo run --release -p cdt-cli --bin cdt -- run $diff_scenario \
    --journal /tmp/cdt_diff_a.jsonl
# shellcheck disable=SC2086
cargo run --release -p cdt-cli --bin cdt -- run $diff_scenario \
    --lanes 4 --journal /tmp/cdt_diff_b.jsonl
# shellcheck disable=SC2086
cargo run --release -p cdt-cli --bin cdt -- run $diff_scenario \
    --fast-math --journal /tmp/cdt_diff_c.jsonl
# shellcheck disable=SC2086
cargo run --release -p cdt-cli --bin cdt -- run $diff_scenario \
    --seed 7 --journal /tmp/cdt_diff_d.jsonl
# Deterministic path: lane width must not change a single settled bit.
cargo run --release -p cdt-cli --bin cdt -- journal diff \
    /tmp/cdt_diff_a.jsonl /tmp/cdt_diff_b.jsonl
# Fast-math: bounded divergence (tol mirrors the documented bound).
cargo run --release -p cdt-cli --bin cdt -- journal diff \
    /tmp/cdt_diff_a.jsonl /tmp/cdt_diff_c.jsonl --tol 1e-6
# A different seed is a different run: the zero-tolerance diff must fail.
if cargo run --release -p cdt-cli --bin cdt -- journal diff \
    /tmp/cdt_diff_a.jsonl /tmp/cdt_diff_d.jsonl; then
    echo "ERROR: journal diff accepted diverging runs" >&2
    exit 1
fi

echo "==> ci.sh: all gates passed"
